use od_core::StepRecord;
use od_graph::{Graph, NodeId};
use rand::{Rng, RngCore};
use std::collections::VecDeque;

/// A protocol message.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Message {
    /// `from` asks the recipient for its current value.
    PullRequest {
        /// The requesting node.
        from: NodeId,
    },
    /// `from` answers with its current value.
    PullResponse {
        /// The responding node.
        from: NodeId,
        /// The value at response time.
        value: f64,
    },
}

/// Message accounting for a run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MessageStats {
    /// Pull requests sent.
    pub requests: u64,
    /// Pull responses sent.
    pub responses: u64,
    /// Local averaging updates performed.
    pub updates: u64,
}

impl MessageStats {
    /// Total messages on the wire.
    pub fn total_messages(&self) -> u64 {
        self.requests + self.responses
    }
}

/// The pull-based averaging protocol over explicit mailboxes.
///
/// Each node holds only its own value; all reads of other nodes' values
/// travel as messages. The scheduler activates one node per step (the
/// asynchronous model of the paper), runs the request/response exchange to
/// quiescence, then applies the local update — so a step is atomic exactly
/// like Definition 2.1, but every datum crosses the (simulated) network.
#[derive(Debug, Clone)]
pub struct ProtocolNetwork<'g> {
    graph: &'g Graph,
    values: Vec<f64>,
    alpha: f64,
    k: usize,
    mailboxes: Vec<VecDeque<Message>>,
    /// Responses collected by the currently active node.
    collected: Vec<f64>,
    sample: Vec<NodeId>,
    stats: MessageStats,
    time: u64,
}

impl<'g> ProtocolNetwork<'g> {
    /// Creates the protocol network for NodeModel parameters `(α, k)`.
    ///
    /// # Panics
    ///
    /// Panics on a disconnected graph, value-count mismatch, `α ∉ [0, 1)`
    /// or `k ∉ [1, d_min]`.
    pub fn new(graph: &'g Graph, values: Vec<f64>, alpha: f64, k: usize) -> Self {
        assert!(
            graph.is_connected() && graph.n() >= 2,
            "graph must be connected"
        );
        assert_eq!(values.len(), graph.n(), "one value per node");
        assert!((0.0..1.0).contains(&alpha), "alpha must lie in [0, 1)");
        assert!(
            k >= 1 && k <= graph.min_degree(),
            "k must satisfy 1 <= k <= d_min"
        );
        let n = graph.n();
        ProtocolNetwork {
            graph,
            values,
            alpha,
            k,
            mailboxes: vec![VecDeque::new(); n],
            collected: Vec::with_capacity(k),
            sample: Vec::with_capacity(k),
            stats: MessageStats::default(),
            time: 0,
        }
    }

    /// Current values (the ground truth held at the nodes).
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Value at node `u`.
    pub fn value(&self, u: NodeId) -> f64 {
        self.values[u as usize]
    }

    /// Message statistics so far.
    pub fn stats(&self) -> MessageStats {
        self.stats
    }

    /// Steps taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// One protocol step with the scheduler's own randomness: activate a
    /// uniform node, sample `k` distinct neighbours, exchange messages,
    /// update.
    pub fn step(&mut self, rng: &mut dyn RngCore) {
        let u = rng.gen_range(0..self.graph.n()) as NodeId;
        let neighbors = self.graph.neighbors(u);
        let d = neighbors.len();
        self.sample.clear();
        if self.k == d {
            self.sample.extend_from_slice(neighbors);
        } else {
            while self.sample.len() < self.k {
                let c = neighbors[rng.gen_range(0..d)];
                if !self.sample.contains(&c) {
                    self.sample.push(c);
                }
            }
        }
        let sample = std::mem::take(&mut self.sample);
        self.exchange_and_update(u, &sample);
        self.sample = sample;
    }

    /// Replays a recorded NodeModel/EdgeModel selection through the full
    /// message exchange. Given the same record sequence, the trajectory is
    /// bit-identical to the state-vector implementation — the conformance
    /// property the RUNTIME experiment checks.
    ///
    /// # Panics
    ///
    /// Panics if the record references a non-edge or (for `Node` records)
    /// a sample size different from `k`.
    pub fn apply(&mut self, record: &StepRecord) {
        match record {
            StepRecord::Noop => {
                self.time += 1;
            }
            StepRecord::Node { node, sample } => {
                assert_eq!(sample.len(), self.k, "record sample size != k");
                assert!(
                    sample.iter().all(|&v| self.graph.has_edge(*node, v)),
                    "record references a non-edge"
                );
                self.exchange_and_update(*node, sample);
            }
            StepRecord::Edge { tail, head } => {
                assert!(
                    self.graph.has_edge(*tail, *head),
                    "record references a non-edge"
                );
                self.exchange_and_update(*tail, std::slice::from_ref(head));
            }
        }
    }

    /// Replays a whole recorded selection stream (e.g. one collected from
    /// an `OpinionProcess::step_recorded` loop) through the message
    /// exchange: [`ProtocolNetwork::apply`] per record, as one call.
    ///
    /// Use this when nothing needs to happen between records (the
    /// `bench_runtime` replay benchmark does); loops that inspect state
    /// after each record — like the RUNTIME conformance experiment —
    /// call [`ProtocolNetwork::apply`] directly.
    ///
    /// # Panics
    ///
    /// As [`ProtocolNetwork::apply`], on any record that does not fit the
    /// graph or `k`.
    pub fn apply_all<'a>(&mut self, records: impl IntoIterator<Item = &'a StepRecord>) {
        for record in records {
            self.apply(record);
        }
    }

    /// Runs the request/response exchange for activation `(u, sample)`
    /// through the mailboxes, then applies the averaging update at `u`.
    fn exchange_and_update(&mut self, u: NodeId, sample: &[NodeId]) {
        self.time += 1;
        // Phase 1: u sends a PullRequest to every sampled neighbour.
        for &v in sample {
            self.mailboxes[v as usize].push_back(Message::PullRequest { from: u });
            self.stats.requests += 1;
        }
        // Phase 2: each sampled neighbour processes its mailbox, answering
        // requests with its current value.
        for &v in sample {
            while let Some(msg) = self.mailboxes[v as usize].pop_front() {
                match msg {
                    Message::PullRequest { from } => {
                        self.mailboxes[from as usize].push_back(Message::PullResponse {
                            from: v,
                            value: self.values[v as usize],
                        });
                        self.stats.responses += 1;
                    }
                    Message::PullResponse { .. } => {
                        unreachable!("responders have no pending responses")
                    }
                }
            }
        }
        // Phase 3: u drains its mailbox and updates. Summation follows the
        // arrival (= sample) order so the floating-point result matches the
        // state-vector implementation exactly.
        self.collected.clear();
        while let Some(msg) = self.mailboxes[u as usize].pop_front() {
            match msg {
                Message::PullResponse { value, .. } => self.collected.push(value),
                Message::PullRequest { from } => {
                    // A request from a (hypothetical) concurrent activation;
                    // answer it to keep mailboxes clean.
                    self.mailboxes[from as usize].push_back(Message::PullResponse {
                        from: u,
                        value: self.values[u as usize],
                    });
                    self.stats.responses += 1;
                }
            }
        }
        let mean = self.collected.iter().sum::<f64>() / self.collected.len() as f64;
        self.values[u as usize] = self.alpha * self.values[u as usize] + (1.0 - self.alpha) * mean;
        self.stats.updates += 1;
    }

    /// Whether every mailbox is empty (quiescence).
    pub fn is_quiescent(&self) -> bool {
        self.mailboxes.iter().all(VecDeque::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_core::{NodeModel, NodeModelParams, OpinionProcess};
    use od_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let g = generators::cycle(5).unwrap();
        let net = ProtocolNetwork::new(&g, vec![0.0; 5], 0.5, 1);
        assert!(net.is_quiescent());
        assert_eq!(net.stats(), MessageStats::default());
    }

    #[test]
    #[should_panic(expected = "d_min")]
    fn rejects_oversized_k() {
        let g = generators::cycle(5).unwrap();
        ProtocolNetwork::new(&g, vec![0.0; 5], 0.5, 3);
    }

    #[test]
    fn step_costs_2k_messages() {
        let g = generators::complete(6).unwrap();
        let mut net = ProtocolNetwork::new(&g, (0..6).map(f64::from).collect(), 0.5, 3);
        let mut rng = StdRng::seed_from_u64(1);
        for expected_steps in 1..=50u64 {
            net.step(&mut rng);
            assert!(net.is_quiescent(), "mailboxes drain every step");
            let s = net.stats();
            assert_eq!(s.requests, 3 * expected_steps);
            assert_eq!(s.responses, 3 * expected_steps);
            assert_eq!(s.updates, expected_steps);
            assert_eq!(s.total_messages(), 6 * expected_steps);
        }
    }

    #[test]
    fn replay_matches_state_vector_implementation_exactly() {
        let g = generators::petersen();
        let xi0: Vec<f64> = (0..10).map(|i| f64::from(i) * 1.3 - 2.0).collect();
        let params = NodeModelParams::new(0.3, 2).unwrap();
        let mut model = NodeModel::new(&g, xi0.clone(), params).unwrap();
        let mut net = ProtocolNetwork::new(&g, xi0, 0.3, 2);
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..2000 {
            let record = model.step_recorded(&mut rng);
            net.apply(&record);
            assert_eq!(
                model.state().values(),
                net.values(),
                "trajectories must be bit-identical"
            );
        }
        assert_eq!(net.time(), 2000);
    }

    #[test]
    fn replay_edge_records() {
        use od_core::{EdgeModel, EdgeModelParams};
        let g = generators::star(6).unwrap();
        let xi0: Vec<f64> = (0..6).map(f64::from).collect();
        let params = EdgeModelParams::new(0.6).unwrap();
        let mut model = EdgeModel::new(&g, xi0.clone(), params).unwrap();
        let mut net = ProtocolNetwork::new(&g, xi0, 0.6, 1);
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..1000 {
            let record = model.step_recorded(&mut rng);
            net.apply(&record);
            assert_eq!(model.state().values(), net.values());
        }
    }

    #[test]
    fn apply_all_replays_a_recorded_stream() {
        let g = generators::torus(4, 4).unwrap();
        let xi0: Vec<f64> = (0..16).map(|i| f64::from(i) * 0.5 - 4.0).collect();
        let params = NodeModelParams::new(0.4, 2).unwrap();
        let mut model = NodeModel::new(&g, xi0.clone(), params).unwrap();
        let mut rng = StdRng::seed_from_u64(12);
        let records: Vec<_> = (0..500).map(|_| model.step_recorded(&mut rng)).collect();
        let mut net = ProtocolNetwork::new(&g, xi0, 0.4, 2);
        net.apply_all(&records);
        assert_eq!(net.time(), 500);
        assert_eq!(model.state().values(), net.values());
        assert!(net.is_quiescent());
    }

    #[test]
    fn standalone_scheduler_converges() {
        let g = generators::complete(8).unwrap();
        let mut net = ProtocolNetwork::new(&g, (0..8).map(f64::from).collect(), 0.5, 2);
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..30_000 {
            net.step(&mut rng);
        }
        let spread = od_core::OpinionState::new(&g, net.values().to_vec())
            .unwrap()
            .discrepancy();
        assert!(spread < 1e-6, "spread {spread}");
    }
}
