//! A message-passing view of the paper's averaging dynamics.
//!
//! The paper motivates its processes as *protocols*: an agent pulls the
//! current opinions of a few peers and averages, without any coordinated
//! simultaneous update. [`ProtocolNetwork`] makes that protocol explicit —
//! mailboxes, `PullRequest` / `PullResponse` messages, message accounting —
//! while preserving exact numerical agreement with the state-vector
//! implementation in `od-core` (verified by replaying the same selection
//! records through both; see the RUNTIME experiment and the integration
//! tests).
//!
//! The exchange for one NodeModel step is:
//!
//! ```text
//!   u --PullRequest--> v_1 .. v_k        (k messages)
//!   v_i --PullResponse(ξ_vi)--> u        (k messages)
//!   u: ξ_u ← α ξ_u + (1−α)/k Σ ξ_vi     (local update)
//! ```
//!
//! One step therefore costs exactly `2k` messages; the EdgeModel costs 2.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod network;

pub use network::{Message, MessageStats, ProtocolNetwork};
