//! Experiment harness for the reproduction of *Distributed Averaging in
//! Opinion Dynamics* (PODC 2023).
//!
//! The paper is a theory paper: its "evaluation" is a set of theorems,
//! lemmas and two worked figures. Each gets a quantitative experiment here
//! (see `DESIGN.md` §4 for the index and `EXPERIMENTS.md` for
//! paper-vs-measured records). Run them with:
//!
//! ```text
//! cargo run --release -p od-experiments --bin run-experiments -- --all
//! cargo run --release -p od-experiments --bin run-experiments -- P58 L57
//! ```
//!
//! Every experiment is a pure function from an [`ExperimentContext`]
//! (quickness + master seed) to a list of result [`Table`]s, so the
//! integration tests can assert on the numbers the binary prints.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod runner;

use od_stats::{SeedSequence, Table};

/// Shared experiment configuration.
#[derive(Debug, Clone, Copy)]
pub struct ExperimentContext {
    /// Reduced trial counts / sizes for CI and tests.
    pub quick: bool,
    /// Master seed; every experiment derives child sequences from it.
    pub seeds: SeedSequence,
}

impl ExperimentContext {
    /// Standard context (full trial counts, fixed master seed).
    pub fn full() -> Self {
        ExperimentContext {
            quick: false,
            seeds: SeedSequence::new(0x0D_5EED),
        }
    }

    /// Quick context for CI.
    pub fn quick() -> Self {
        ExperimentContext {
            quick: true,
            seeds: SeedSequence::new(0x0D_5EED),
        }
    }

    /// Picks a trial count depending on quickness.
    pub fn trials(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// A named experiment.
pub struct Experiment {
    /// Short id used on the command line (e.g. `"P58"`).
    pub id: &'static str,
    /// One-line description.
    pub description: &'static str,
    /// The experiment body.
    pub run: fn(&ExperimentContext) -> Vec<Table>,
}

/// The registry of all experiments, in the order of `DESIGN.md` §4.
pub fn registry() -> Vec<Experiment> {
    vec![
        Experiment {
            id: "FIG1",
            description: "Figure 1: duality worked example (k=1, alpha=1/2)",
            run: experiments::duality::fig1,
        },
        Experiment {
            id: "FIG4",
            description: "Figure 4: duality worked example (k=2, alpha=1/2)",
            run: experiments::duality::fig4,
        },
        Experiment {
            id: "DUAL",
            description: "Lemma 5.2: exact duality on random runs",
            run: experiments::duality::random_duality,
        },
        Experiment {
            id: "T22-CONV",
            description: "Thm 2.2(1): NodeModel convergence time vs n/(1-lambda2)",
            run: experiments::convergence::node_convergence,
        },
        Experiment {
            id: "T22-K",
            description: "Thm 2.2(1): weak k-dependence of convergence time",
            run: experiments::convergence::k_dependence,
        },
        Experiment {
            id: "T24-CONV",
            description: "Thm 2.4(1): EdgeModel convergence time vs m/lambda2(L)",
            run: experiments::convergence::edge_convergence,
        },
        Experiment {
            id: "PB2",
            description: "Prop B.2: worst-case initial state (second eigenvector)",
            run: experiments::convergence::lower_bound,
        },
        Experiment {
            id: "T22-VAR",
            description: "Thm 2.2(2): Var(F) structure/k independence",
            run: experiments::variance::structure_independence,
        },
        Experiment {
            id: "T24-VAR",
            description: "Thm 2.4(2): EdgeModel variance = NodeModel k=1 on regular graphs",
            run: experiments::variance::edge_variance,
        },
        Experiment {
            id: "P58",
            description: "Prop 5.8: empirical Var(F) vs exact Q-chain prediction",
            run: experiments::variance::exact_prediction,
        },
        Experiment {
            id: "CE2",
            description: "Cor E.2: time-dependent variance bounds",
            run: experiments::variance::time_variance,
        },
        Experiment {
            id: "L41",
            description: "Lemma 4.1: martingale conservation of M(t) and Avg(t)",
            run: experiments::martingale::conservation,
        },
        Experiment {
            id: "L57",
            description: "Lemma 5.7: Q-chain stationary distribution closed form",
            run: experiments::stationary::closed_form_validation,
        },
        Experiment {
            id: "PB1",
            description: "Prop B.1: NodeModel one-step potential contraction",
            run: experiments::potential::node_drop,
        },
        Experiment {
            id: "PD1",
            description: "Prop D.1: EdgeModel one-step potential contraction",
            run: experiments::potential::edge_drop,
        },
        Experiment {
            id: "CMP-BASE",
            description: "Price of simplicity vs gossip/push-sum/DeGroot/diffusion",
            run: experiments::comparison::baselines,
        },
        Experiment {
            id: "CMP-VOTER",
            description: "NodeModel vs voter-model consensus time",
            run: experiments::comparison::voter,
        },
        Experiment {
            id: "EQUIV",
            description: "NodeModel(k=1) and EdgeModel coincide on regular graphs",
            run: experiments::comparison::equivalence,
        },
        Experiment {
            id: "IRREG",
            description: "Irregular graphs: E[F] weights and exploratory variance",
            run: experiments::comparison::irregular,
        },
        Experiment {
            id: "RUNTIME",
            description: "Message-passing runtime conformance and cost",
            run: experiments::duality::runtime_conformance,
        },
        Experiment {
            id: "HIGHER",
            description: "Section 6 extension: E[F^M] via M correlated walks",
            run: experiments::higher_moments::moments,
        },
        Experiment {
            id: "DYN-CHURN",
            description: "Dynamic graphs: NodeModel convergence vs edge-swap churn rate",
            run: experiments::dynamic::churn_convergence,
        },
    ]
}

/// Looks up an experiment by (case-insensitive) id.
pub fn find(id: &str) -> Option<Experiment> {
    registry()
        .into_iter()
        .find(|e| e.id.eq_ignore_ascii_case(id))
}
