//! Parallel Monte-Carlo driver — re-exported from `od-sim`, where the
//! scenario dispatch layer shares it. The semantics are unchanged: trial
//! `i` always receives `seeds.seed(i)`, so results are identical (not
//! merely equal as multisets) across thread counts and batch sizes. See
//! `od_sim::runner` for the full documentation and tests.

pub use od_sim::runner::{
    monte_carlo, monte_carlo_batched, monte_carlo_batched_threads, monte_carlo_stats,
};
