//! Parallel Monte-Carlo driver.
//!
//! Trials are split across threads with `std::thread::scope`; each
//! trial gets a seed derived purely from `(master, trial index)`, so the
//! result multiset is independent of the thread count and schedule.

use od_stats::{SeedSequence, Welford};
use std::sync::Mutex;

/// Runs `trials` independent trials of `f` (given the per-trial seed) in
/// parallel, returning all results in trial order.
pub fn monte_carlo<T, F>(trials: usize, seeds: SeedSequence, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(trials.max(1));
    let results: Mutex<Vec<(usize, T)>> = Mutex::new(Vec::with_capacity(trials));
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let f = &f;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut trial = worker;
                while trial < trials {
                    local.push((trial, f(seeds.seed(trial as u64))));
                    trial += threads;
                }
                results.lock().expect("result mutex poisoned").extend(local);
            });
        }
    });
    let mut collected = results.into_inner().expect("result mutex poisoned");
    collected.sort_by_key(|(i, _)| *i);
    collected.into_iter().map(|(_, v)| v).collect()
}

/// Runs trials and folds the `f64` results into a single Welford
/// accumulator.
pub fn monte_carlo_stats<F>(trials: usize, seeds: SeedSequence, f: F) -> Welford
where
    F: Fn(u64) -> f64 + Sync,
{
    monte_carlo(trials, seeds, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let seeds = SeedSequence::new(42);
        let a = monte_carlo(100, seeds, |s| s.wrapping_mul(3));
        let b = monte_carlo(100, seeds, |s| s.wrapping_mul(3));
        assert_eq!(a, b);
    }

    #[test]
    fn results_in_trial_order() {
        let seeds = SeedSequence::new(1);
        let idx = monte_carlo(64, seeds, |_| ());
        assert_eq!(idx.len(), 64);
        // Trial order is checked through seeds: f receives seed(i), so
        // reconstruct and compare.
        let vals = monte_carlo(64, seeds, |s| s);
        let expected: Vec<u64> = (0..64).map(|i| seeds.seed(i)).collect();
        assert_eq!(vals, expected);
    }

    #[test]
    fn stats_match_sequential_fold() {
        let seeds = SeedSequence::new(7);
        let w = monte_carlo_stats(500, seeds, |s| (s % 1000) as f64);
        let mut seq = Welford::new();
        for i in 0..500 {
            seq.push((seeds.seed(i) % 1000) as f64);
        }
        assert_eq!(w.count(), seq.count());
        assert!((w.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn single_trial_ok() {
        let seeds = SeedSequence::new(9);
        let v = monte_carlo(1, seeds, |s| s);
        assert_eq!(v.len(), 1);
    }
}
