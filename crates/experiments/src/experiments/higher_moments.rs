//! HIGHER — the paper's §6 future-work item, implemented: estimate higher
//! moments `E[F^M]` of the convergence value through `M` correlated random
//! walks (the natural extension of the two-walk machinery of §5.3), and
//! cross-validate against direct Monte Carlo over full averaging runs.

use super::common;
use crate::ExperimentContext;
use od_dual::{moment_via_walks, variance, QChain};
use od_graph::generators;
use od_stats::{fmt_float, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// HIGHER: for M = 2 and M = 3, compare
/// (a) the M-correlated-walk dual estimate of `E[F^M]`,
/// (b) direct Monte Carlo of `F^M` over full averaging runs, and
/// (c) for M = 2 the exact Q-chain prediction (Prop. 5.8 machinery).
///
/// Uses an asymmetric centered initial vector so the third moment is
/// non-trivial.
pub fn moments(ctx: &ExperimentContext) -> Vec<Table> {
    let walk_trials = ctx.trials(200_000, 30_000);
    let direct_trials = ctx.trials(20_000, 3_000);
    let alpha = 0.5;
    let k = 1;
    let g = generators::complete(8).unwrap();
    // Centered but skewed initial values: third moment of F is non-zero.
    let mut xi0: Vec<f64> = vec![7.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0, -1.0];
    let mean = xi0.iter().sum::<f64>() / 8.0;
    for v in &mut xi0 {
        *v -= mean;
    }

    // Direct Monte Carlo of F.
    let seeds = ctx.seeds.child(1_600);
    let fs = crate::runner::monte_carlo(direct_trials, seeds, |seed| {
        common::estimate_f_node(&g, alpha, k, &xi0, seed, 1e-10)
    });

    let mut t = Table::new(
        format!(
            "Section 6 extension — E[F^M] via M correlated walks on complete(8) \
             ({walk_trials} walk trials x 10 batches, {direct_trials} direct trials)"
        ),
        &[
            "M",
            "walk_dual_estimate",
            "walk_2se",
            "direct_monte_carlo",
            "exact_qchain",
            "gap_z",
        ],
    );

    for order in [2usize, 3] {
        // The cost product is heavy-tailed (both walks on the hub give
        // ξ_hub^M), so quantify the estimator's own spread over
        // independent batches.
        let mut batches = od_stats::Welford::new();
        for batch in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(0x6E6E + order as u64 * 100 + batch);
            let est =
                moment_via_walks(&g, alpha, k, &xi0, order, 1_500, walk_trials / 10, &mut rng)
                    .expect("valid walk setup");
            batches.push(est);
        }
        let walk_est = batches.mean().unwrap();
        let walk_se = batches.standard_error().unwrap();
        let direct: f64 = fs.iter().map(|f| f.powi(order as i32)).sum::<f64>() / fs.len() as f64;
        let exact = if order == 2 {
            let chain = QChain::new(&g, alpha, k).unwrap();
            fmt_float(variance::predict_variance(&chain, &xi0).unwrap().exact)
        } else {
            "-".to_string()
        };
        t.push_row(vec![
            order.to_string(),
            fmt_float(walk_est),
            fmt_float(2.0 * walk_se),
            fmt_float(direct),
            exact,
            fmt_float((walk_est - direct) / walk_se),
        ]);
    }

    // Skewness of F, the quantity a Chernoff-type bound would need.
    let m2: f64 = fs.iter().map(|f| f * f).sum::<f64>() / fs.len() as f64;
    let m3: f64 = fs.iter().map(|f| f * f * f).sum::<f64>() / fs.len() as f64;
    let mut s = Table::new(
        "Section 6 extension — shape of F (direct sample)",
        &["quantity", "value"],
    );
    s.push_row(vec!["E[F^2]".into(), fmt_float(m2)]);
    s.push_row(vec!["E[F^3]".into(), fmt_float(m3)]);
    s.push_row(vec![
        "skewness E[F^3]/E[F^2]^1.5".into(),
        fmt_float(m3 / m2.powf(1.5)),
    ]);
    vec![t, s]
}
