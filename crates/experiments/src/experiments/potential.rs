//! PB1 / PD1 — one-step potential contraction.

use crate::runner::monte_carlo_stats;
use crate::ExperimentContext;
use od_core::{theory, EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess};
use od_graph::generators;
use od_linalg::eigen;
use od_stats::{fmt_float, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// PB1: `E[φ(ξ(t+1)) | ξ(t)] ≤ c·φ(ξ(t))` with the exact factor of
/// Prop. B.1 — and equality when `ξ(t)` is the second eigenvector `f₂(P)`
/// (where every spectral inequality in the proof is tight).
pub fn node_drop(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(400_000, 50_000);
    let alpha = 0.5;
    let cases = vec![
        ("cycle(16)", generators::cycle(16).unwrap(), 1usize),
        ("cycle(16)", generators::cycle(16).unwrap(), 2),
        ("petersen", generators::petersen(), 2),
        ("complete(12)", generators::complete(12).unwrap(), 4),
    ];
    let mut t = Table::new(
        format!("Prop B.1 — one-step E[phi]/phi from f2(P) ({trials} single-step trials)"),
        &[
            "graph",
            "k",
            "lambda2(P)",
            "measured_factor",
            "predicted_factor",
            "measured/predicted",
        ],
    );
    for (idx, (name, g, k)) in cases.into_iter().enumerate() {
        let spec = eigen::lazy_walk_spectrum(&g, 1e-12, 4_000_000);
        let xi0 = spec.f2.clone();
        let state0 = od_core::OpinionState::new(&g, xi0.clone()).unwrap();
        let phi0 = state0.potential_pi();
        let seeds = ctx.seeds.child(1_000 + idx as u64);
        let stats = monte_carlo_stats(trials, seeds, |seed| {
            let params = NodeModelParams::new(alpha, k).unwrap();
            let mut m = NodeModel::new(&g, xi0.clone(), params).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            m.step(&mut rng);
            m.state().potential_pi() / phi0
        });
        let measured = stats.mean().unwrap();
        let predicted = theory::node_contraction_factor(g.n(), spec.lambda2, alpha, k);
        t.push_row(vec![
            name.to_string(),
            k.to_string(),
            fmt_float(spec.lambda2),
            format!("{measured:.6}"),
            format!("{predicted:.6}"),
            format!("{:.4}", measured / predicted),
        ]);
    }
    vec![t]
}

/// PD1: `E[φ̄_V(ξ(t+1))] ≤ (1 − α(1−α)λ₂(L)/m)·φ̄_V(ξ(t))`, with equality
/// from the Fiedler vector.
pub fn edge_drop(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(400_000, 50_000);
    let alpha = 0.5;
    let cases = vec![
        ("cycle(16)", generators::cycle(16).unwrap()),
        ("star(16)", generators::star(16).unwrap()),
        ("path(12)", generators::path(12).unwrap()),
        ("complete(10)", generators::complete(10).unwrap()),
    ];
    let mut t = Table::new(
        format!("Prop D.1 — one-step E[phi_V]/phi_V from f2(L) ({trials} single-step trials)"),
        &[
            "graph",
            "m",
            "lambda2(L)",
            "measured_factor",
            "predicted_factor",
            "measured/predicted",
        ],
    );
    for (idx, (name, g)) in cases.into_iter().enumerate() {
        let spec = eigen::laplacian_spectrum(&g, 1e-12, 4_000_000);
        let xi0 = spec.fiedler.clone();
        let state0 = od_core::OpinionState::new(&g, xi0.clone()).unwrap();
        let phi0 = state0.potential_uniform();
        let seeds = ctx.seeds.child(1_100 + idx as u64);
        let stats = monte_carlo_stats(trials, seeds, |seed| {
            let params = EdgeModelParams::new(alpha).unwrap();
            let mut m = EdgeModel::new(&g, xi0.clone(), params).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            m.step(&mut rng);
            m.state().potential_uniform() / phi0
        });
        let measured = stats.mean().unwrap();
        let predicted = theory::edge_contraction_factor(g.m(), spec.lambda2, alpha);
        t.push_row(vec![
            name.to_string(),
            g.m().to_string(),
            fmt_float(spec.lambda2),
            format!("{measured:.6}"),
            format!("{predicted:.6}"),
            format!("{:.4}", measured / predicted),
        ]);
    }
    vec![t]
}
