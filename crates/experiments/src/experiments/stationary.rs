//! L57 — the Q-chain stationary distribution.

use crate::ExperimentContext;
use od_dual::{QChain, StateClass, TwoWalks};
use od_graph::generators;
use od_linalg::markov::total_variation;
use od_stats::{fmt_float, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// L57: three-way validation of Lemma 5.7 —
///
/// 1. the closed form satisfies the balance equations `μQ = μ` (residual);
/// 2. power iteration over the exact transition operator converges to the
///    closed form (total-variation distance);
/// 3. two simulated correlated walks occupy the classes `S0/S1/S+` with
///    the closed-form frequencies.
pub fn closed_form_validation(ctx: &ExperimentContext) -> Vec<Table> {
    let mut rng_graphs = StdRng::seed_from_u64(3131);
    let cases: Vec<(String, od_graph::Graph, f64, usize)> = vec![
        ("cycle(8)".into(), generators::cycle(8).unwrap(), 0.5, 1),
        ("cycle(8)".into(), generators::cycle(8).unwrap(), 0.5, 2),
        (
            "complete(8)".into(),
            generators::complete(8).unwrap(),
            0.5,
            3,
        ),
        ("petersen".into(), generators::petersen(), 0.25, 2),
        ("petersen".into(), generators::petersen(), 0.75, 3),
        (
            "hypercube(3)".into(),
            generators::hypercube(3).unwrap(),
            0.5,
            2,
        ),
        (
            "torus(3x4)".into(),
            generators::torus(3, 4).unwrap(),
            0.4,
            2,
        ),
        (
            "random_regular(12,5)".into(),
            generators::random_regular(12, 5, &mut rng_graphs).unwrap(),
            0.6,
            2,
        ),
    ];
    let mut t = Table::new(
        "Lemma 5.7 — closed form vs balance equations and power iteration",
        &[
            "graph",
            "alpha",
            "k",
            "mu0",
            "mu1",
            "mu_plus",
            "balance_residual",
            "tv_vs_numeric",
        ],
    );
    for (name, g, alpha, k) in &cases {
        let chain = QChain::new(g, *alpha, *k).unwrap();
        let classes = chain.closed_form();
        let residual = chain.closed_form_balance_residual();
        let numeric = chain.stationary_numeric(1e-13, 500_000);
        let tv = total_variation(&numeric.distribution, &chain.closed_form_vector());
        t.push_row(vec![
            name.clone(),
            fmt_float(*alpha),
            k.to_string(),
            format!("{:.3e}", classes.mu0),
            format!("{:.3e}", classes.mu1),
            format!("{:.3e}", classes.mu_plus),
            format!("{residual:.2e}"),
            format!("{tv:.2e}"),
        ]);
    }

    // Empirical occupancy of the two correlated walks.
    let steps = ctx.trials(4_000_000, 400_000) as u64;
    let burn_in = steps / 10;
    let mut t2 = Table::new(
        format!("Lemma 5.7 — empirical two-walk class occupancy ({steps} steps)"),
        &[
            "graph",
            "alpha",
            "k",
            "class",
            "freq_empirical",
            "freq_closed_form",
        ],
    );
    for (name, g, alpha, k) in cases.iter().take(4) {
        let chain = QChain::new(g, *alpha, *k).unwrap();
        let classes = chain.closed_form();
        let n = g.n();
        let two_e = 2 * g.m();
        let class_mass = [
            (StateClass::S0, classes.mu0 * n as f64),
            (StateClass::S1, classes.mu1 * two_e as f64),
            (
                StateClass::SPlus,
                classes.mu_plus * (n * n - n - two_e) as f64,
            ),
        ];
        let mut walks = TwoWalks::new(g, *alpha, *k, 0, (n / 2) as u32).unwrap();
        let mut rng = StdRng::seed_from_u64(4242);
        let mut counts = [0u64; 3];
        for step in 0..steps {
            walks.step(&mut rng);
            if step < burn_in {
                continue;
            }
            let (x, y) = walks.state();
            let idx = match chain.classify(x, y) {
                StateClass::S0 => 0,
                StateClass::S1 => 1,
                StateClass::SPlus => 2,
            };
            counts[idx] += 1;
        }
        let total = (steps - burn_in) as f64;
        for (i, (class, mass)) in class_mass.iter().enumerate() {
            t2.push_row(vec![
                name.clone(),
                fmt_float(*alpha),
                k.to_string(),
                format!("{class:?}"),
                fmt_float(counts[i] as f64 / total),
                fmt_float(*mass),
            ]);
        }
    }
    vec![t, t2]
}
