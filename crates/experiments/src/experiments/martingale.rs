//! L41 — martingale conservation.

use super::common;
use crate::runner::monte_carlo_stats;
use crate::ExperimentContext;
use od_core::{EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess};
use od_graph::generators;
use od_stats::{fmt_float, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// L41: `E[M(t)] = M(0)` for the NodeModel (degree-weighted average, even
/// on irregular graphs) and `E[Avg(t)] = Avg(0)` for the EdgeModel. The
/// drift over many trials must be statistically indistinguishable from 0,
/// while the *plain* average in the NodeModel on irregular graphs drifts
/// towards the degree-weighted value (the contrast the paper stresses).
pub fn conservation(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(6_000, 800);
    let t_run: u64 = 2_000;
    let alpha = 0.5;
    let mut t = Table::new(
        format!("Lemma 4.1 — martingale drift after {t_run} steps ({trials} trials)"),
        &[
            "graph",
            "model",
            "martingale",
            "initial",
            "mean_final",
            "drift_z",
        ],
    );

    let cases: Vec<(&str, od_graph::Graph)> = vec![
        ("star(16)", generators::star(16).unwrap()),
        ("barbell(6)", generators::barbell(6).unwrap()),
        ("cycle(16)", generators::cycle(16).unwrap()),
    ];
    for (idx, (name, g)) in cases.iter().enumerate() {
        let xi0: Vec<f64> = (0..g.n())
            .map(|i| (i as f64) - g.n() as f64 / 2.0)
            .collect();
        let state0 = od_core::OpinionState::new(g, xi0.clone()).unwrap();
        let m0 = state0.weighted_average();
        let avg0 = state0.average();

        // NodeModel: M(t) is conserved in expectation.
        let seeds = ctx.seeds.child(900 + idx as u64);
        let stats = monte_carlo_stats(trials, seeds, |seed| {
            let params = NodeModelParams::new(alpha, 1).unwrap();
            let mut m = NodeModel::new(g, xi0.clone(), params).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..t_run {
                m.step(&mut rng);
            }
            m.state().weighted_average()
        });
        let mean = stats.mean().unwrap();
        let se = stats.standard_error().unwrap();
        t.push_row(vec![
            name.to_string(),
            "node(k=1)".into(),
            "M(t)".into(),
            fmt_float(m0),
            fmt_float(mean),
            fmt_float((mean - m0) / se),
        ]);

        // EdgeModel: Avg(t) is conserved in expectation.
        let seeds = ctx.seeds.child(920 + idx as u64);
        let stats = monte_carlo_stats(trials, seeds, |seed| {
            let params = EdgeModelParams::new(alpha).unwrap();
            let mut m = EdgeModel::new(g, xi0.clone(), params).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            for _ in 0..t_run {
                m.step(&mut rng);
            }
            m.state().average()
        });
        let mean = stats.mean().unwrap();
        let se = stats.standard_error().unwrap();
        t.push_row(vec![
            name.to_string(),
            "edge".into(),
            "Avg(t)".into(),
            fmt_float(avg0),
            fmt_float(mean),
            fmt_float((mean - avg0) / se),
        ]);
    }

    // Contrast: the NodeModel's plain average on the star is NOT conserved —
    // E[F] is the degree-weighted average.
    let g = generators::star(16).unwrap();
    let xi0: Vec<f64> = (0..16).map(|i| (i as f64) - 8.0).collect();
    let state0 = od_core::OpinionState::new(&g, xi0.clone()).unwrap();
    let seeds = ctx.seeds.child(940);
    let stats = monte_carlo_stats(trials, seeds, |seed| {
        common::estimate_f_node(&g, alpha, 1, &xi0, seed, 1e-10)
    });
    let mean_f = stats.mean().unwrap();
    let se = stats.standard_error().unwrap();
    let mut t2 = Table::new(
        format!("Lemma 4.1 corollary — E[F] on star(16) is degree-weighted ({trials} trials)"),
        &["quantity", "value"],
    );
    t2.push_row(vec!["Avg(0) (plain)".into(), fmt_float(state0.average())]);
    t2.push_row(vec![
        "M(0) (degree-weighted)".into(),
        fmt_float(state0.weighted_average()),
    ]);
    t2.push_row(vec!["E[F] empirical".into(), fmt_float(mean_f)]);
    t2.push_row(vec![
        "z vs M(0)".into(),
        fmt_float((mean_f - state0.weighted_average()) / se),
    ]);
    t2.push_row(vec![
        "z vs Avg(0)".into(),
        fmt_float((mean_f - state0.average()) / se),
    ]);
    vec![t, t2]
}
