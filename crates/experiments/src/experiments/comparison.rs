//! CMP-BASE / CMP-VOTER / EQUIV / IRREG — comparative experiments.

use super::common;
use crate::runner::{monte_carlo, monte_carlo_stats};
use crate::ExperimentContext;
use od_baselines::{DiffusionBalancer, PairwiseGossip, PushSum};
use od_core::{OpinionState, VoterModel};
use od_dual::variance::{centered_norm_sq, variance_k1_closed_form};
use od_graph::generators;
use od_stats::{fmt_float, Table, Welford};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// CMP-BASE: the "price of simplicity". The unilateral NodeModel/EdgeModel
/// converge fast but their limit `F` has `Var(F) = Θ(‖ξ‖²/n²)`;
/// coordinated protocols (pairwise gossip, push-sum, synchronous
/// diffusion) recover the exact average.
pub fn baselines(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(2_000, 300);
    let tol = 1e-6;
    let g = generators::torus(6, 6).unwrap();
    let n = g.n();
    let xi0: Vec<f64> = (0..n)
        .map(|i| (i as f64) - (n as f64 - 1.0) / 2.0)
        .collect();
    let avg0 = 0.0;
    let norm = centered_norm_sq(&xi0);

    let mut t = Table::new(
        format!("Price of simplicity on torus(6x6) (tol={tol:.0e}, {trials} trials)"),
        &[
            "protocol",
            "coordination",
            "mean_steps",
            "mean|F-Avg0|",
            "Var(F)*n^2/|xi|^2",
        ],
    );

    struct Row {
        name: &'static str,
        coordination: &'static str,
        steps: Welford,
        errs: Welford,
        f_values: Welford,
    }
    let mut rows: Vec<Row> = Vec::new();

    // NodeModel (k=1) and EdgeModel.
    for (name, is_node) in [("NodeModel(k=1)", true), ("EdgeModel", false)] {
        let seeds = ctx.seeds.child(if is_node { 1200 } else { 1201 });
        let results = monte_carlo(trials, seeds, |seed| {
            let f = if is_node {
                common::estimate_f_node(&g, 0.5, 1, &xi0, seed, 1e-10)
            } else {
                common::estimate_f_edge(&g, 0.5, &xi0, seed, 1e-10)
            };
            let steps = if is_node {
                common::steps_to_eps_node(&g, 0.5, 1, &xi0, seed ^ 1, tol)
            } else {
                common::steps_to_eps_edge_uniform(&g, 0.5, &xi0, seed ^ 1, tol * n as f64)
            };
            (steps as f64, f)
        });
        let mut steps = Welford::new();
        let mut errs = Welford::new();
        let mut f_values = Welford::new();
        for (s, f) in results {
            steps.push(s);
            errs.push((f - avg0).abs());
            f_values.push(f);
        }
        rows.push(Row {
            name,
            coordination: "unilateral pull",
            steps,
            errs,
            f_values,
        });
    }

    // Pairwise gossip.
    {
        let seeds = ctx.seeds.child(1202);
        let results = monte_carlo(trials, seeds, |seed| {
            let mut p = PairwiseGossip::new(&g, xi0.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let steps = p.run(&mut rng, tol, 100_000_000);
            (steps as f64, p.values()[0])
        });
        let mut steps = Welford::new();
        let mut errs = Welford::new();
        let mut f_values = Welford::new();
        for (s, f) in results {
            steps.push(s);
            errs.push((f - avg0).abs());
            f_values.push(f);
        }
        rows.push(Row {
            name: "PairwiseGossip",
            coordination: "coordinated pair",
            steps,
            errs,
            f_values,
        });
    }

    // Push-sum.
    {
        let seeds = ctx.seeds.child(1203);
        let results = monte_carlo(trials, seeds, |seed| {
            let mut p = PushSum::new(&g, xi0.clone());
            let mut rng = StdRng::seed_from_u64(seed);
            let steps = p.run(&mut rng, tol, 100_000_000);
            (steps as f64, p.estimate(0))
        });
        let mut steps = Welford::new();
        let mut errs = Welford::new();
        let mut f_values = Welford::new();
        for (s, f) in results {
            steps.push(s);
            errs.push((f - avg0).abs());
            f_values.push(f);
        }
        rows.push(Row {
            name: "PushSum",
            coordination: "push mass",
            steps,
            errs,
            f_values,
        });
    }

    // Synchronous diffusion (deterministic; rounds scaled to node
    // activations for comparability).
    {
        let mut b = DiffusionBalancer::new(&g, xi0.clone());
        let rounds = b.run(tol, 10_000_000);
        let mut steps = Welford::new();
        steps.push((rounds * n as u64) as f64);
        let mut errs = Welford::new();
        errs.push((b.values()[0] - avg0).abs());
        let mut f_values = Welford::new();
        f_values.push(b.values()[0]);
        rows.push(Row {
            name: "SyncDiffusion",
            coordination: "global rounds",
            steps,
            errs,
            f_values,
        });
    }

    for row in rows {
        let var = row.f_values.sample_variance().unwrap_or(0.0);
        t.push_row(vec![
            row.name.to_string(),
            row.coordination.to_string(),
            fmt_float(row.steps.mean().unwrap()),
            fmt_float(row.errs.mean().unwrap()),
            fmt_float(var * (n * n) as f64 / norm),
        ]);
    }
    vec![t]
}

/// CMP-VOTER: the NodeModel's ε-convergence vs the voter model's
/// consensus time (§2 claims an `Ω(n/log n)` separation for constant
/// spectral gap).
pub fn voter(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(50, 10);
    let sizes: &[usize] = if ctx.quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128]
    };
    let mut t = Table::new(
        format!("Voter vs NodeModel on complete(n) ({trials} trials)"),
        &[
            "n",
            "voter_consensus_steps",
            "nodemodel_T_eps",
            "voter/nodemodel",
        ],
    );
    for (idx, &n) in sizes.iter().enumerate() {
        let g = generators::complete(n).unwrap();
        let seeds = ctx.seeds.child(1_300 + idx as u64);
        let voter_stats = monte_carlo_stats(trials, seeds, |seed| {
            let opinions: Vec<u32> = (0..n as u32).collect();
            let mut v = VoterModel::new(&g, opinions).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            v.run_to_consensus(&mut rng, u64::MAX).steps as f64
        });
        let xi0 = common::pm_one(n);
        let seeds = ctx.seeds.child(1_320 + idx as u64);
        let node_stats = monte_carlo_stats(trials, seeds, |seed| {
            common::steps_to_eps_node(&g, 0.5, 1, &xi0, seed, 1e-9) as f64
        });
        let v = voter_stats.mean().unwrap();
        let m = node_stats.mean().unwrap();
        t.push_row(vec![
            n.to_string(),
            fmt_float(v),
            fmt_float(m),
            fmt_float(v / m),
        ]);
    }
    vec![t]
}

/// EQUIV: on regular graphs with `k = 1` the NodeModel and the EdgeModel
/// are the same process — empirical `Var(F)` and `T_ε` agree within noise.
pub fn equivalence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(6_000, 800);
    let g = generators::cycle(12).unwrap();
    let xi0 = common::pm_one(12);
    let mut t = Table::new(
        format!("NodeModel(k=1) vs EdgeModel on cycle(12) ({trials} trials)"),
        &["quantity", "node_model", "edge_model", "z_score"],
    );
    let seeds = ctx.seeds.child(1_400);
    let node_f = monte_carlo_stats(trials, seeds, |seed| {
        common::estimate_f_node(&g, 0.5, 1, &xi0, seed, 1e-10)
    });
    let seeds = ctx.seeds.child(1_401);
    let edge_f = monte_carlo_stats(trials, seeds, |seed| {
        common::estimate_f_edge(&g, 0.5, &xi0, seed, 1e-10)
    });
    let mean_z = (node_f.mean().unwrap() - edge_f.mean().unwrap())
        / (node_f.standard_error().unwrap().powi(2) + edge_f.standard_error().unwrap().powi(2))
            .sqrt();
    t.push_row(vec![
        "E[F]".into(),
        fmt_float(node_f.mean().unwrap()),
        fmt_float(edge_f.mean().unwrap()),
        fmt_float(mean_z),
    ]);
    let var_z = (node_f.sample_variance().unwrap() - edge_f.sample_variance().unwrap())
        / (node_f.variance_standard_error().unwrap().powi(2)
            + edge_f.variance_standard_error().unwrap().powi(2))
        .sqrt();
    t.push_row(vec![
        "Var(F)".into(),
        fmt_float(node_f.sample_variance().unwrap()),
        fmt_float(edge_f.sample_variance().unwrap()),
        fmt_float(var_z),
    ]);
    vec![t]
}

/// IRREG: irregular graphs. `E[F]` is degree-weighted for the NodeModel
/// and plain for the EdgeModel; empirical `Var(F)` is reported as
/// exploratory data for the paper's open question (§6).
pub fn irregular(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(6_000, 800);
    let cases = [
        ("star(16)", generators::star(16).unwrap()),
        ("barbell(8)", generators::barbell(8).unwrap()),
        ("lollipop(8,8)", generators::lollipop(8, 8).unwrap()),
    ];
    let mut t = Table::new(
        format!(
            "Irregular graphs — E[F] weighting and Var(F) vs general Q-chain ({trials} trials)"
        ),
        &[
            "graph",
            "model",
            "E[F]_empirical",
            "M(0)",
            "Avg(0)",
            "Var(F)*n^2/|xi|^2",
            "general_qchain_pred",
            "k1_regular_formula",
        ],
    );
    for (idx, (name, g)) in cases.iter().enumerate() {
        let n = g.n();
        let xi0: Vec<f64> = (0..n)
            .map(|i| (i as f64) - (n as f64 - 1.0) / 2.0)
            .collect();
        let state0 = OpinionState::new(g, xi0.clone()).unwrap();
        let norm = centered_norm_sq(&xi0);
        let regular_formula = variance_k1_closed_form(n, 0.5, norm) * (n * n) as f64 / norm;
        // §6 second open question: the general two-walk chain has no closed
        // form, but its numeric stationary distribution predicts the
        // NodeModel variance exactly.
        let qpred = od_dual::GeneralQChain::new(g, 0.5, 1)
            .unwrap()
            .predict_variance_numeric(&xi0, 1e-13, 500_000)
            .unwrap()
            * (n * n) as f64
            / norm;

        let seeds = ctx.seeds.child(1_500 + idx as u64);
        let node = monte_carlo_stats(trials, seeds, |seed| {
            common::estimate_f_node(g, 0.5, 1, &xi0, seed, 1e-10)
        });
        t.push_row(vec![
            name.to_string(),
            "node(k=1)".into(),
            fmt_float(node.mean().unwrap()),
            fmt_float(state0.weighted_average()),
            fmt_float(state0.average()),
            fmt_float(node.sample_variance().unwrap() * (n * n) as f64 / norm),
            fmt_float(qpred),
            fmt_float(regular_formula),
        ]);

        let seeds = ctx.seeds.child(1_520 + idx as u64);
        let edge = monte_carlo_stats(trials, seeds, |seed| {
            common::estimate_f_edge(g, 0.5, &xi0, seed, 1e-10)
        });
        t.push_row(vec![
            name.to_string(),
            "edge".into(),
            fmt_float(edge.mean().unwrap()),
            fmt_float(state0.weighted_average()),
            fmt_float(state0.average()),
            fmt_float(edge.sample_variance().unwrap() * (n * n) as f64 / norm),
            "-".into(),
            fmt_float(regular_formula),
        ]);
    }
    vec![t]
}
