//! T22-VAR / T24-VAR / P58 / CE2 — variance experiments (the paper's
//! headline result).

use super::common;
use crate::runner::{monte_carlo_batched, monte_carlo_stats};
use crate::ExperimentContext;
use od_core::{theory, EdgeModelParams, KernelSpec, NodeModelParams, ReplicaBatch};
use od_dual::variance::{centered_norm_sq, predict_variance, variance_k1_closed_form};
use od_dual::QChain;
use od_graph::{generators, Graph};
use od_sim::GraphSpec;
use od_stats::{fmt_float, Table, Welford};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Estimation tolerance for the convergence value per trial.
const F_EPS: f64 = 1e-10;

#[allow(clippy::too_many_arguments)] // one declarative sweep cell
fn empirical_var_node(
    ctx: &ExperimentContext,
    child: u64,
    graph_spec: GraphSpec,
    g: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    trials: usize,
) -> Welford {
    // One Scenario-API sweep on the convergence engine's exact stopping
    // rule: trial `i` stops at the same step as the scalar
    // `estimate_f_node` path this replaced, from the same seed, so the
    // Var(F) statistics are preserved (F is read off the identical
    // stopping state, bit for bit).
    let seeds = ctx.seeds.child(child);
    let report = common::run_node_converge(graph_spec, g, alpha, k, xi0, trials, seeds, F_EPS);
    common::f_estimates(&report).into_iter().collect()
}

/// T22-VAR: `Var(F)·n²/‖ξ‖²` is Θ(1), independent of graph structure and
/// of `k`, and matches the exact Q-chain prediction.
pub fn structure_independence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(4_000, 600);
    let n = 24;
    let alpha = 0.5;
    let xi0 = common::pm_one(n);
    let norm = centered_norm_sq(&xi0);
    // The two random-regular instances share one RNG stream (seed 777),
    // so they are supplied programmatically; the GraphSpec entries are
    // descriptive (`Simulation::from_spec_with_graph`).
    let mut rng = StdRng::seed_from_u64(777);
    let cases: Vec<(String, GraphSpec, Graph)> = vec![
        (
            format!("cycle({n})"),
            GraphSpec::Cycle { n },
            generators::cycle(n).unwrap(),
        ),
        (
            format!("random_regular({n},4)"),
            GraphSpec::RandomRegular { n, d: 4, seed: 777 },
            generators::random_regular(n, 4, &mut rng).unwrap(),
        ),
        (
            format!("random_regular({n},8)"),
            GraphSpec::RandomRegular { n, d: 8, seed: 777 },
            generators::random_regular(n, 8, &mut rng).unwrap(),
        ),
        (
            format!("complete({n})"),
            GraphSpec::Complete { n },
            generators::complete(n).unwrap(),
        ),
    ];
    let mut t = Table::new(
        format!(
            "Thm 2.2(2) — Var(F)*n^2/|xi|^2 across structures (alpha={alpha}, {trials} trials)"
        ),
        &[
            "graph",
            "k",
            "var_empirical",
            "var_predicted",
            "norm_var_emp",
            "norm_var_pred",
            "z_score",
        ],
    );
    for (idx, (name, graph_spec, g)) in cases.iter().enumerate() {
        let d = g.regular_degree().expect("regular");
        for (jdx, &k) in [1usize, 2].iter().enumerate() {
            if k > d {
                continue;
            }
            let stats = empirical_var_node(
                ctx,
                500 + (idx * 4 + jdx) as u64,
                graph_spec.clone(),
                g,
                alpha,
                k,
                &xi0,
                trials,
            );
            let emp = stats.sample_variance().unwrap();
            let se = stats.variance_standard_error().unwrap();
            let chain = QChain::new(g, alpha, k).unwrap();
            let pred = predict_variance(&chain, &xi0).unwrap().exact;
            let scale = (n * n) as f64 / norm;
            t.push_row(vec![
                name.clone(),
                k.to_string(),
                fmt_float(emp),
                fmt_float(pred),
                fmt_float(emp * scale),
                fmt_float(pred * scale),
                fmt_float((emp - pred) / se),
            ]);
        }
    }
    vec![t]
}

/// T24-VAR: EdgeModel variance on regular graphs equals the NodeModel
/// `k = 1` prediction (the two processes are identical there).
pub fn edge_variance(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(4_000, 600);
    let alpha = 0.5;
    let cases = [
        ("cycle(16)", generators::cycle(16).unwrap()),
        ("torus(4x4)", generators::torus(4, 4).unwrap()),
        ("complete(16)", generators::complete(16).unwrap()),
    ];
    let mut t = Table::new(
        format!("Thm 2.4(2) — EdgeModel Var(F) on regular graphs (alpha={alpha}, {trials} trials)"),
        &["graph", "var_empirical", "var_predicted_k1", "z_score"],
    );
    for (idx, (name, g)) in cases.iter().enumerate() {
        let xi0 = common::pm_one(g.n());
        let seeds = ctx.seeds.child(600 + idx as u64);
        let stats = monte_carlo_stats(trials, seeds, |seed| {
            common::estimate_f_edge(g, alpha, &xi0, seed, F_EPS)
        });
        let emp = stats.sample_variance().unwrap();
        let se = stats.variance_standard_error().unwrap();
        let pred = variance_k1_closed_form(g.n(), alpha, centered_norm_sq(&xi0));
        t.push_row(vec![
            name.to_string(),
            fmt_float(emp),
            fmt_float(pred),
            fmt_float((emp - pred) / se),
        ]);
    }
    vec![t]
}

/// P58: the exact quadratic-form prediction against high-trial Monte
/// Carlo, including the Θ-envelope and the `k = 1` fully closed form.
/// Also prints the paper-printed envelope constants next to the μ-based
/// ones (documenting the constant discrepancy; see `EXPERIMENTS.md`).
pub fn exact_prediction(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(12_000, 1_500);
    let alpha = 0.5;
    let mut t = Table::new(
        format!("Prop 5.8 — empirical Var(F) vs exact prediction ({trials} trials)"),
        &[
            "graph",
            "k",
            "var_empirical",
            "2se",
            "var_exact",
            "theta_lower",
            "theta_upper",
            "z_score",
        ],
    );
    let cases: Vec<(&str, GraphSpec, Graph, usize)> = vec![
        (
            "cycle(16)",
            GraphSpec::Cycle { n: 16 },
            generators::cycle(16).unwrap(),
            1,
        ),
        (
            "complete(16)",
            GraphSpec::Complete { n: 16 },
            generators::complete(16).unwrap(),
            1,
        ),
        (
            "hypercube(4)",
            GraphSpec::Hypercube { dim: 4 },
            generators::hypercube(4).unwrap(),
            2,
        ),
        ("petersen", GraphSpec::Petersen, generators::petersen(), 3),
    ];
    for (idx, (name, graph_spec, g, k)) in cases.iter().enumerate() {
        // A non-uniform initial vector exercises the edge term of the
        // quadratic form (±1 alternating vectors make it degenerate).
        let xi0: Vec<f64> = (0..g.n()).map(|i| ((i * 7 % 5) as f64) - 2.0).collect();
        let stats = empirical_var_node(
            ctx,
            700 + idx as u64,
            graph_spec.clone(),
            g,
            alpha,
            *k,
            &xi0,
            trials,
        );
        let emp = stats.sample_variance().unwrap();
        let se = stats.variance_standard_error().unwrap();
        let chain = QChain::new(g, alpha, *k).unwrap();
        let pred = predict_variance(&chain, &xi0).unwrap();
        t.push_row(vec![
            name.to_string(),
            k.to_string(),
            fmt_float(emp),
            fmt_float(2.0 * se),
            fmt_float(pred.exact),
            fmt_float(pred.lower),
            fmt_float(pred.upper),
            fmt_float((emp - pred.exact) / se),
        ]);
    }

    // Constant comparison: paper-printed vs μ-based Θ-envelope constants.
    let mut c = Table::new(
        "Prop 5.8 — envelope constants: paper-printed vs mu-based (normalized by |xi|^2)",
        &[
            "graph",
            "k",
            "upper_mu",
            "upper_paper",
            "lower_mu",
            "lower_paper",
        ],
    );
    for (name, _, g, k) in &cases {
        let d = g.regular_degree().unwrap() as f64;
        let n = g.n() as f64;
        let kf = *k as f64;
        let chain = QChain::new(g, alpha, *k).unwrap();
        let cls = chain.closed_form();
        let upper_mu = (cls.mu0 - cls.mu_plus) - d * (cls.mu1 - cls.mu_plus);
        let lower_mu = (cls.mu0 - cls.mu_plus) + d * (cls.mu1 - cls.mu_plus);
        let denom = n * n * (3.0 * d * kf + d - 3.0 * kf);
        let upper_paper = 2.0 * kf * (d - 1.0) * (1.0 - alpha) / denom;
        let lower_paper = 2.0 * (1.0 - alpha) * (2.0 * d * kf - d - kf) / denom;
        c.push_row(vec![
            name.to_string(),
            k.to_string(),
            fmt_float(upper_mu),
            fmt_float(upper_paper),
            fmt_float(lower_mu),
            fmt_float(lower_paper),
        ]);
    }
    vec![t, c]
}

/// Trials per [`ReplicaBatch`] in the batched checkpoint sweeps: big
/// enough to amortise the shared-graph setup, small enough to keep every
/// worker thread busy at quick-mode trial counts.
const REPLICAS_PER_BATCH: usize = 32;

/// Runs `trials` fixed-step trajectories of `spec` through the batched
/// replica engine, reading `stat` at each checkpoint. Replica `r` of a
/// chunk is bit-identical to a scalar run seeded with that trial's seed,
/// so the sweep's statistics are unchanged from the per-trial path it
/// replaced — only the setup cost and memory layout differ.
fn checkpoint_sweep(
    g: &Graph,
    spec: KernelSpec,
    xi0: &[f64],
    checkpoints: &[u64],
    trials: usize,
    seeds: od_stats::SeedSequence,
    stat: impl Fn(&ReplicaBatch<'_>, usize) -> f64 + Sync,
) -> Vec<Vec<f64>> {
    assert!(
        checkpoints.windows(2).all(|w| w[0] < w[1]),
        "checkpoints must be strictly ascending"
    );
    monte_carlo_batched(trials, seeds, REPLICAS_PER_BATCH, |_, chunk_seeds| {
        let mut batch = ReplicaBatch::new(g, spec, xi0, chunk_seeds).unwrap();
        let mut rows = vec![Vec::with_capacity(checkpoints.len()); chunk_seeds.len()];
        for &cp in checkpoints {
            batch.step_many(cp - batch.time());
            for (r, row) in rows.iter_mut().enumerate() {
                row.push(stat(&batch, r));
            }
        }
        rows
    })
}

/// CE2: time-dependent variance trajectories stay below the linear-in-t
/// bounds `Var(M(t)) ≤ t(d_max K/2m)²` (Node) and
/// `Var(Avg(t)) ≤ tK²/n²` (Edge). Both sweeps run on the batched replica
/// engine ([`ReplicaBatch`] under [`monte_carlo_batched`]).
pub fn time_variance(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(3_000, 500);
    let alpha = 0.5;
    let checkpoints: &[u64] = &[50, 200, 800, 3200];

    // EdgeModel on the cycle.
    let g = generators::cycle(16).unwrap();
    let xi0 = common::pm_one(16);
    let discrepancy = 2.0;
    let mut t_edge = Table::new(
        format!("Cor E.2(iii) — EdgeModel Var(Avg(t)) <= t K^2/n^2 on cycle(16) ({trials} trials)"),
        &["t", "var_empirical", "bound", "ratio"],
    );
    let spec = KernelSpec::Edge(EdgeModelParams::new(alpha).unwrap());
    let trajectories = checkpoint_sweep(
        &g,
        spec,
        &xi0,
        checkpoints,
        trials,
        ctx.seeds.child(800),
        |batch, r| batch.replica_average(r),
    );
    for (i, &cp) in checkpoints.iter().enumerate() {
        let w: Welford = trajectories.iter().map(|tr| tr[i]).collect();
        let emp = w.sample_variance().unwrap();
        let bound = theory::variance_time_bound_edge(cp, 16, discrepancy);
        t_edge.push_row(vec![
            cp.to_string(),
            fmt_float(emp),
            fmt_float(bound),
            fmt_float(emp / bound),
        ]);
    }

    // NodeModel on the star (irregular: M(t) is the martingale).
    let g = generators::star(16).unwrap();
    let xi0: Vec<f64> = (0..16)
        .map(|i| if i == 0 { 1.0 } else { -1.0 / 15.0 })
        .collect();
    let mut t_node = Table::new(
        format!(
            "Cor E.2(ii) — NodeModel Var(M(t)) <= t (d_max K/2m)^2 on star(16) ({trials} trials)"
        ),
        &["t", "var_empirical", "bound", "ratio"],
    );
    let discrepancy = 1.0 + 1.0 / 15.0;
    let spec = KernelSpec::Node(NodeModelParams::new(alpha, 1).unwrap());
    let trajectories = checkpoint_sweep(
        &g,
        spec,
        &xi0,
        checkpoints,
        trials,
        ctx.seeds.child(801),
        |batch, r| batch.replica_weighted_average(r),
    );
    for (i, &cp) in checkpoints.iter().enumerate() {
        let w: Welford = trajectories.iter().map(|tr| tr[i]).collect();
        let emp = w.sample_variance().unwrap();
        let bound = theory::variance_time_bound_node(cp, 15, g.m(), discrepancy);
        t_node.push_row(vec![
            cp.to_string(),
            fmt_float(emp),
            fmt_float(bound),
            fmt_float(emp / bound),
        ]);
    }
    vec![t_edge, t_node]
}
