//! T22-CONV / T22-K / T24-CONV / PB2 — convergence-time experiments.
//!
//! All four sweeps run through the unified Scenario API (`od-sim`): each
//! builds one declarative spec and the dispatcher routes it to the
//! convergence engine (the retirement-aware streaming runner with the
//! scalar-identical exact stopping rule), so the measured statistics are
//! bit-identical to the scalar per-trial paths these sweeps replaced —
//! gated in `tests/batch_equivalence.rs`.

use super::common;
use crate::ExperimentContext;
use od_core::theory;
use od_graph::{generators, Graph};
use od_linalg::{eigen, spectra};
use od_sim::{
    run_sweep, GraphSpec, ModelSpec, PotentialSpec, ScenarioSpec, StopRuleSpec, StopSpec,
    SweepAxis, SweepSpec,
};
use od_stats::{fmt_float, SeedSequence, Table, Welford};

/// NodeModel ε-convergence times through the Scenario API: per-trial
/// stopping times under the exact stopping rule, folded in trial order.
#[allow(clippy::too_many_arguments)] // one declarative sweep cell
fn node_steps_stats(
    graph_spec: GraphSpec,
    g: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    trials: usize,
    seeds: SeedSequence,
    eps: f64,
) -> Welford {
    common::run_node_converge(graph_spec, g, alpha, k, xi0, trials, seeds, eps)
        .trials
        .iter()
        .map(|t| t.steps as f64)
        .collect()
}

/// Regular families with analytic lazy-walk gaps.
fn regular_families(sizes: &[usize]) -> Vec<(String, GraphSpec, Graph, f64)> {
    let mut out = Vec::new();
    for &n in sizes {
        let g = generators::cycle(n).unwrap();
        let gap = spectra::lazy_gap_regular(&spectra::cycle_adjacency(n), 2);
        out.push((format!("cycle({n})"), GraphSpec::Cycle { n }, g, 1.0 - gap));

        let g = generators::complete(n).unwrap();
        let gap = spectra::lazy_gap_regular(&spectra::complete_adjacency(n), n - 1);
        out.push((
            format!("complete({n})"),
            GraphSpec::Complete { n },
            g,
            1.0 - gap,
        ));
    }
    // Tori and hypercubes at their natural sizes.
    for &s in &[4usize, 6] {
        let g = generators::torus(s, s).unwrap();
        let gap = spectra::lazy_gap_regular(&spectra::torus_adjacency(s, s), 4);
        out.push((
            format!("torus({s}x{s})"),
            GraphSpec::Torus { rows: s, cols: s },
            g,
            1.0 - gap,
        ));
    }
    for &d in &[4usize, 5] {
        let g = generators::hypercube(d).unwrap();
        let gap = spectra::lazy_gap_regular(&spectra::hypercube_adjacency(d), d);
        out.push((
            format!("hypercube({d})"),
            GraphSpec::Hypercube { dim: d },
            g,
            1.0 - gap,
        ));
    }
    out
}

/// The T22-CONV sweep as one declarative [`SweepSpec`]: a crossed
/// `graph` axis over the regular families plus zipped per-cell `seed`
/// values (the legacy per-family seed streams — cell `idx` keeps
/// `ctx.seeds.child(100 + idx)`, so the table is byte-identical to the
/// per-cell loop this replaced). The committed
/// `examples/scenarios/t22_conv_sweep.scn` is this spec's full-mode
/// text form, pinned equal in `tests/sweep_files.rs`.
pub fn node_convergence_sweep(ctx: &ExperimentContext) -> SweepSpec {
    let trials = ctx.trials(20, 5);
    let eps = 1e-9;
    let sizes: &[usize] = if ctx.quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128]
    };
    let families = regular_families(sizes);
    // One uniform step budget — the maximum of the per-cell budgets.
    // Under the exact stopping rule the budget only caps: every trial
    // that converges within the smaller per-cell budget takes exactly
    // the same steps under the larger one.
    let budget = families
        .iter()
        .map(|(_, _, g, _)| common::step_budget(g))
        .max()
        .expect("at least one family");
    let mut base = ScenarioSpec::new(
        ModelSpec::Node {
            alpha: 0.5,
            k: 1,
            lazy: false,
        },
        families[0].1.clone(),
        0,
    );
    base.name = Some("t22-conv".into());
    base.replicas = trials;
    base.stop = StopSpec::Converge {
        epsilon: eps,
        rule: StopRuleSpec::Exact,
        potential: PotentialSpec::Pi,
        budget,
    };
    SweepSpec {
        base,
        axes: vec![
            SweepAxis::Graph(families.iter().map(|f| f.1.clone()).collect()),
            SweepAxis::Seed(
                (0..families.len())
                    .map(|idx| ctx.seeds.child(100 + idx as u64).master())
                    .collect(),
            ),
        ],
    }
}

/// T22-CONV: measured ε-convergence time vs the Prop. B.1 prediction
/// (which instantiates Theorem 2.2(1)'s `O(n log(n‖ξ‖²/ε)/(1−λ₂))` with
/// explicit constants). Runs as one sweep ([`node_convergence_sweep`]):
/// `run_sweep` builds each distinct graph once and runs the cells
/// through the same convergence engine the per-cell loop used.
pub fn node_convergence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(20, 5);
    let eps = 1e-9;
    let alpha = 0.5;
    let k = 1;
    let sizes: &[usize] = if ctx.quick {
        &[16, 32]
    } else {
        &[16, 32, 64, 128]
    };
    let sweep = node_convergence_sweep(ctx);
    let report = run_sweep(&sweep).expect("the T22-CONV sweep is valid");
    let mut t = Table::new(
        format!(
            "Thm 2.2(1) — NodeModel T_eps (alpha={alpha}, k={k}, eps={eps:.0e}, {trials} trials)"
        ),
        &[
            "graph",
            "n",
            "lambda2(P)",
            "T_measured",
            "T_predicted",
            "ratio",
        ],
    );
    for (cell, (name, _, g, lambda2)) in report.cells.iter().zip(regular_families(sizes)) {
        let xi0 = common::pm_one(g.n());
        let phi0 = od_core::OpinionState::new(&g, xi0).unwrap().potential_pi();
        let stats: Welford = cell.report.trials.iter().map(|t| t.steps as f64).collect();
        let measured = stats.mean().unwrap();
        let predicted = theory::node_convergence_steps(g.n(), lambda2, alpha, k, phi0, eps);
        t.push_row(vec![
            name,
            g.n().to_string(),
            fmt_float(lambda2),
            fmt_float(measured),
            fmt_float(predicted),
            fmt_float(measured / predicted),
        ]);
    }
    vec![t]
}

/// T22-K: the convergence time barely improves with `k` — the rate gains
/// at most the factor `(1 + 1/k) ∈ [1, 2]` highlighted in §2.
pub fn k_dependence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(30, 8);
    let eps = 1e-9;
    let alpha = 0.5;
    let d = 6;
    let g = generators::hypercube(d).unwrap();
    let lambda2 = 1.0 - spectra::lazy_gap_regular(&spectra::hypercube_adjacency(d), d);
    let xi0 = common::pm_one(g.n());
    let phi0 = od_core::OpinionState::new(&g, xi0.clone())
        .unwrap()
        .potential_pi();
    let base_rate = 1.0 - theory::node_contraction_factor(g.n(), lambda2, alpha, 1);
    let mut t = Table::new(
        format!(
            "Thm 2.2(1) — k-dependence on hypercube({d}) (n={}, alpha={alpha}, {trials} trials)",
            g.n()
        ),
        &[
            "k",
            "T_measured",
            "T_predicted",
            "speedup_vs_k1",
            "predicted_speedup",
        ],
    );
    let mut t1 = None;
    for (idx, &k) in [1usize, 2, 3, 6].iter().enumerate() {
        let seeds = ctx.seeds.child(200 + idx as u64);
        let stats = node_steps_stats(
            GraphSpec::Hypercube { dim: d },
            &g,
            alpha,
            k,
            &xi0,
            trials,
            seeds,
            eps,
        );
        let measured = stats.mean().unwrap();
        let predicted = theory::node_convergence_steps(g.n(), lambda2, alpha, k, phi0, eps);
        let t1_val = *t1.get_or_insert(measured);
        let rate_k = 1.0 - theory::node_contraction_factor(g.n(), lambda2, alpha, k);
        t.push_row(vec![
            k.to_string(),
            fmt_float(measured),
            fmt_float(predicted),
            fmt_float(t1_val / measured),
            fmt_float(rate_k / base_rate),
        ]);
    }
    vec![t]
}

/// T24-CONV: measured EdgeModel time to `φ̄_V ≤ ε` vs the Prop. D.1
/// prediction `m log(φ̄_V(0)/ε) / (α(1−α)λ₂(L))`, on regular *and*
/// irregular graphs.
///
/// Runs through the Scenario API on the convergence engine's
/// exact-**uniform** stopping arm (`PotentialKind::Uniform`): stopping
/// times are bit-identical to the scalar `potential_uniform` loop this
/// sweep historically used, but trials now share one streaming SoA
/// window with early retirement.
pub fn edge_convergence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(20, 5);
    let eps = 1e-9;
    let alpha = 0.5;
    let mut cases: Vec<(String, GraphSpec, Graph)> = vec![
        (
            "cycle(32)".into(),
            GraphSpec::Cycle { n: 32 },
            generators::cycle(32).unwrap(),
        ),
        (
            "complete(32)".into(),
            GraphSpec::Complete { n: 32 },
            generators::complete(32).unwrap(),
        ),
        (
            "star(32)".into(),
            GraphSpec::Star { n: 32 },
            generators::star(32).unwrap(),
        ),
        (
            "barbell(8)".into(),
            GraphSpec::Barbell { k: 8 },
            generators::barbell(8).unwrap(),
        ),
        (
            "path(32)".into(),
            GraphSpec::Path { n: 32 },
            generators::path(32).unwrap(),
        ),
    ];
    if !ctx.quick {
        cases.push((
            "torus(6x6)".into(),
            GraphSpec::Torus { rows: 6, cols: 6 },
            generators::torus(6, 6).unwrap(),
        ));
        cases.push((
            "binary_tree(5)".into(),
            GraphSpec::BinaryTree { levels: 5 },
            generators::binary_tree(5).unwrap(),
        ));
    }
    let mut t = Table::new(
        format!(
            "Thm 2.4(1) — EdgeModel T_eps on phi_V (alpha={alpha}, eps={eps:.0e}, {trials} trials)"
        ),
        &[
            "graph",
            "n",
            "m",
            "lambda2(L)",
            "T_measured",
            "T_predicted",
            "ratio",
        ],
    );
    for (idx, (name, graph_spec, g)) in cases.into_iter().enumerate() {
        let lambda2 = eigen::laplacian_spectrum(&g, 1e-11, 2_000_000).lambda2;
        let xi0 = common::pm_one(g.n());
        let phi0: f64 = {
            let mean = xi0.iter().sum::<f64>() / g.n() as f64;
            xi0.iter().map(|v| (v - mean) * (v - mean)).sum()
        };
        let seeds = ctx.seeds.child(300 + idx as u64);
        let report =
            common::run_edge_converge_uniform(graph_spec, &g, alpha, &xi0, trials, seeds, eps);
        let stats: Welford = report.trials.iter().map(|t| t.steps as f64).collect();
        let measured = stats.mean().unwrap();
        let predicted = theory::edge_convergence_steps(g.m(), lambda2, alpha, phi0, eps);
        t.push_row(vec![
            name,
            g.n().to_string(),
            g.m().to_string(),
            fmt_float(lambda2),
            fmt_float(measured),
            fmt_float(predicted),
            fmt_float(measured / predicted),
        ]);
    }
    vec![t]
}

/// PB2: starting from the second eigenvector is the worst case — the
/// upper bound is tight there, and generic initial vectors of the same
/// norm converge no slower than the prediction. (The eigenvector initial
/// state is programmatic — `Simulation::with_initial_values` — since no
/// declarative init distribution expresses it.)
pub fn lower_bound(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(20, 6);
    let eps = 1e-9;
    let alpha = 0.5;
    let n = if ctx.quick { 24 } else { 48 };
    let g = generators::cycle(n).unwrap();
    let spec = eigen::lazy_walk_spectrum(&g, 1e-12, 4_000_000);
    // Worst case: ξ(0) ∝ f₂(P), scaled to ‖ξ‖² = n like the ±1 vector.
    let scale = (n as f64).sqrt() / od_linalg::vector::norm2(&spec.f2);
    let worst: Vec<f64> = spec.f2.iter().map(|v| v * scale).collect();
    let generic = common::pm_one(n);

    let mut t = Table::new(
        format!(
            "Prop B.2 — worst-case initial state on cycle({n}) (alpha={alpha}, {trials} trials)"
        ),
        &[
            "initial_state",
            "norm_sq",
            "T_measured",
            "T_predicted",
            "ratio",
        ],
    );
    for (idx, (label, xi0)) in [("f2_eigenvector", worst), ("pm_one_generic", generic)]
        .into_iter()
        .enumerate()
    {
        let phi0 = od_core::OpinionState::new(&g, xi0.clone())
            .unwrap()
            .potential_pi();
        let seeds = ctx.seeds.child(400 + idx as u64);
        let stats = node_steps_stats(
            GraphSpec::Cycle { n },
            &g,
            alpha,
            1,
            &xi0,
            trials,
            seeds,
            eps,
        );
        let measured = stats.mean().unwrap();
        let predicted = theory::node_convergence_steps(n, spec.lambda2, alpha, 1, phi0, eps);
        t.push_row(vec![
            label.to_string(),
            fmt_float(od_linalg::vector::norm2_sq(&xi0)),
            fmt_float(measured),
            fmt_float(predicted),
            fmt_float(measured / predicted),
        ]);
    }
    vec![t]
}
