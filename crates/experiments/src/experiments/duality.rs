//! FIG1 / FIG4 / DUAL / RUNTIME — the coupling experiments.

use crate::ExperimentContext;
use od_core::{NodeModel, NodeModelParams, OpinionProcess, StepRecord};
use od_dual::duality::{self, FigureReproduction};
use od_graph::generators;
use od_runtime::ProtocolNetwork;
use od_stats::{fmt_float, Table};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figure_table(fig: &FigureReproduction) -> Table {
    let mut t = Table::new(
        format!("{} — xi(2), W(2) vs paper", fig.label),
        &["node", "xi0", "xi_final", "W_final", "paper", "abs_err"],
    );
    for u in 0..fig.xi0.len() {
        t.push_row(vec![
            format!("u{}", u + 1),
            fmt_float(fig.xi0[u]),
            fmt_float(fig.xi_final[u]),
            fmt_float(fig.w_final[u]),
            fmt_float(fig.expected[u]),
            fmt_float((fig.xi_final[u] - fig.expected[u]).abs()),
        ]);
    }
    t
}

/// FIG1: reproduce the worked example of Figure 1 exactly.
pub fn fig1(_ctx: &ExperimentContext) -> Vec<Table> {
    let fig = duality::figure1();
    let mut r = Table::new(
        "Figure 1 — R(2) matrix (paper prints [[1/2,1/4,0],[1/2,3/4,0],[0,0,1]])",
        &["row", "c1", "c2", "c3"],
    );
    for i in 0..3 {
        let row = fig.r_final.row(i);
        r.push_row(vec![
            format!("r{}", i + 1),
            fmt_float(row[0]),
            fmt_float(row[1]),
            fmt_float(row[2]),
        ]);
    }
    vec![figure_table(&fig), r]
}

/// FIG4: reproduce the worked example of Figure 4 exactly.
pub fn fig4(_ctx: &ExperimentContext) -> Vec<Table> {
    let fig = duality::figure4();
    vec![figure_table(&fig)]
}

/// DUAL: Lemma 5.2 on random runs across graph families and parameters.
pub fn random_duality(ctx: &ExperimentContext) -> Vec<Table> {
    let steps = ctx.trials(2_000, 300);
    let mut t = Table::new(
        format!("Lemma 5.2 — W(T) = xi(T) exactly (T = {steps} random steps)"),
        &["graph", "n", "model", "alpha", "k", "max_abs_err"],
    );
    let cases: Vec<(&str, od_graph::Graph, usize)> = vec![
        ("cycle", generators::cycle(16).unwrap(), 2),
        ("petersen", generators::petersen(), 3),
        ("complete", generators::complete(10).unwrap(), 5),
        ("hypercube", generators::hypercube(4).unwrap(), 1),
        ("torus", generators::torus(4, 4).unwrap(), 2),
    ];
    for (name, g, k) in &cases {
        let xi0: Vec<f64> = (0..g.n()).map(|i| (i as f64) * 1.7 - 3.0).collect();
        for &alpha in &[0.25, 0.5, 0.75] {
            let check = duality::verify_node_duality(g, alpha, *k, &xi0, steps, 42)
                .expect("valid duality setup");
            t.push_row(vec![
                name.to_string(),
                g.n().to_string(),
                "node".into(),
                fmt_float(alpha),
                k.to_string(),
                format!("{:.2e}", check.max_abs_error),
            ]);
        }
        let check =
            duality::verify_edge_duality(g, 0.5, &xi0, steps, 43).expect("valid duality setup");
        t.push_row(vec![
            name.to_string(),
            g.n().to_string(),
            "edge".into(),
            fmt_float(0.5),
            "1".into(),
            format!("{:.2e}", check.max_abs_error),
        ]);
    }
    // Irregular graphs through the edge model.
    for (name, g) in [
        ("star", generators::star(12).unwrap()),
        ("barbell", generators::barbell(5).unwrap()),
    ] {
        let xi0: Vec<f64> = (0..g.n()).map(|i| (i * i) as f64 * 0.1).collect();
        let check =
            duality::verify_edge_duality(&g, 0.5, &xi0, steps, 44).expect("valid duality setup");
        t.push_row(vec![
            name.to_string(),
            g.n().to_string(),
            "edge".into(),
            fmt_float(0.5),
            "1".into(),
            format!("{:.2e}", check.max_abs_error),
        ]);
    }
    vec![t]
}

/// RUNTIME: the message-passing protocol reproduces the state-vector
/// trajectory bit-for-bit, at a cost of exactly `2k` messages per step.
pub fn runtime_conformance(ctx: &ExperimentContext) -> Vec<Table> {
    let steps = ctx.trials(50_000, 5_000) as u64;
    let mut t = Table::new(
        format!("Runtime conformance over {steps} steps"),
        &[
            "graph",
            "k",
            "max_traj_diff",
            "messages",
            "msgs_per_step",
            "throughput_steps_per_s",
        ],
    );
    let cases = vec![
        ("petersen", generators::petersen(), 2usize),
        ("torus6x6", generators::torus(6, 6).unwrap(), 3),
    ];
    for (name, g, k) in cases {
        let xi0: Vec<f64> = (0..g.n()).map(|i| (i as f64).sin()).collect();
        let params = NodeModelParams::new(0.5, k).unwrap();
        let mut model = NodeModel::new(&g, xi0.clone(), params).unwrap();
        let mut net = ProtocolNetwork::new(&g, xi0, 0.5, k);
        let mut rng = StdRng::seed_from_u64(5);
        // od-lint: allow(D2) — throughput_steps_per_s is an inherently wall-clock column; the science columns stay clock-free
        let start = std::time::Instant::now();
        let mut max_diff: f64 = 0.0;
        // One record reused across the run: `step_recorded_into` rewrites
        // its sample buffer in place, so the loop is allocation-free.
        let mut record = StepRecord::Noop;
        for _ in 0..steps {
            model.step_recorded_into(&mut rng, &mut record);
            net.apply(&record);
            let diff = model
                .state()
                .values()
                .iter()
                .zip(net.values())
                .map(|(a, b)| (a - b).abs())
                .fold(0.0, f64::max);
            max_diff = max_diff.max(diff);
        }
        let elapsed = start.elapsed().as_secs_f64();
        let stats = net.stats();
        t.push_row(vec![
            name.to_string(),
            k.to_string(),
            format!("{max_diff:.2e}"),
            stats.total_messages().to_string(),
            fmt_float(stats.total_messages() as f64 / steps as f64),
            fmt_float(steps as f64 / elapsed),
        ]);
    }
    vec![t]
}
