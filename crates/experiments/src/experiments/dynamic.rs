//! DYN-CHURN — convergence on evolving topologies.
//!
//! The paper analyses a fixed communication graph; this experiment opens
//! the time-varying regime (cf. averaging inequalities over time-varying
//! graphs, arXiv:1910.14465). A NodeModel runs on a torus whose edges are
//! churned by degree-preserving swaps between epochs; the sweep measures
//! ε-convergence time as a function of the churn rate.
//!
//! Expectation: swaps turn the torus into an expander-like small world,
//! so *more* churn ⇒ *faster* convergence — a quantitative version of
//! the "diffusion loves rewiring" folklore. Rate 0 reproduces the static
//! batched engine bit for bit (gated by `tests/batch_equivalence.rs`).
//!
//! Trials run through `monte_carlo_batched` with a [`DynamicReplicaBatch`]
//! per chunk, driven by the batched convergence engine
//! ([`DynamicReplicaBatch::run_until_converged`]): converged replicas
//! retire early (no more steps wasted on finished trajectories) and the
//! SoA buffer is compacted, with the same epoch-boundary stopping rule the
//! old hand-rolled loop used. The churn seed is fixed per sweep cell (not
//! per chunk), so every replica sees the same topology trajectory and
//! per-trial results are independent of batch size and thread schedule,
//! exactly like the static sweeps.

use super::common;
use crate::runner::monte_carlo_batched;
use crate::ExperimentContext;
use od_core::{DynamicReplicaBatch, KernelSpec, NodeModelParams};
use od_graph::{generators, ChurnModel, DynamicGraph};
use od_stats::{fmt_float, Table, Welford};

/// ε for the potential-based convergence check (Eq. 3).
const EPS: f64 = 1e-12;

/// Swaps-per-epoch sweep points.
const CHURN_RATES: [usize; 4] = [0, 1, 4, 16];

/// DYN-CHURN: NodeModel ε-convergence time vs edge-swap churn rate on a
/// torus, batched over a shared evolving topology.
pub fn churn_convergence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(64, 8);
    let side = if ctx.quick { 8 } else { 16 };
    let g = generators::torus(side, side).expect("torus dimensions are valid");
    let n = g.n();
    let xi0 = common::pm_one(n);
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).expect("valid params"));
    let steps_per_epoch = n as u64;
    let max_epochs: u64 = if ctx.quick { 1_500 } else { 3_000 };
    let budget = max_epochs * steps_per_epoch;

    let mut t = Table::new(
        format!(
            "DYN-CHURN — NodeModel(k=2, alpha=0.5) steps to phi <= {EPS} on torus({side}x{side}) \
             under edge-swap churn ({trials} trials, epoch = {steps_per_epoch} steps)"
        ),
        &[
            "swaps_per_epoch",
            "mean_steps",
            "std_error",
            "mean_epochs",
            "converged_frac",
            "topology_mutations",
        ],
    );
    for (idx, &swaps) in CHURN_RATES.iter().enumerate() {
        // One churn stream per sweep cell: every chunk replays the same
        // topology trajectory, so trial i's result depends only on
        // (churn seed, trial seed) — batch-size independent.
        let churn_seed = ctx.seeds.child(940).seed(idx as u64);
        let seeds = ctx.seeds.child(941 + idx as u64);
        let cell: Vec<(u64, bool, u64)> = monte_carlo_batched(trials, seeds, 16, |_, chunk| {
            let churn = ChurnModel::edge_swap(swaps);
            let mut batch = DynamicReplicaBatch::new(
                DynamicGraph::new(g.clone()),
                spec,
                &xi0,
                chunk,
                churn,
                churn_seed,
            )
            .expect("valid dynamic batch");
            // Inner threads pinned to 1: monte_carlo_batched already
            // parallelises across chunks.
            let reports = batch
                .run_until_converged(steps_per_epoch, max_epochs, EPS, 1)
                .expect("degree-preserving churn cannot break the spec");
            let mutations = batch.mutations();
            reports
                .into_iter()
                .map(|r| {
                    (
                        if r.converged { r.steps } else { budget },
                        r.converged,
                        mutations,
                    )
                })
                .collect()
        });
        let steps: Welford = cell.iter().map(|&(s, _, _)| s as f64).collect();
        let converged = cell.iter().filter(|&&(_, ok, _)| ok).count();
        let mutations = cell.iter().map(|&(_, _, m)| m).max().unwrap_or(0);
        t.push_row(vec![
            swaps.to_string(),
            fmt_float(steps.mean().unwrap_or(f64::NAN)),
            fmt_float(steps.standard_error().unwrap_or(f64::NAN)),
            fmt_float(steps.mean().unwrap_or(f64::NAN) / steps_per_epoch as f64),
            fmt_float(converged as f64 / trials as f64),
            mutations.to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runner::monte_carlo_batched;
    use od_stats::SeedSequence;

    /// The schedule-independence contract the sweep relies on: per-trial
    /// convergence times are identical whether trials run one per batch
    /// or many per batch, because the churn stream is a function of the
    /// cell's churn seed alone.
    #[test]
    fn dynamic_sweep_results_independent_of_batch_size() {
        let g = generators::torus(4, 4).unwrap();
        let xi0 = common::pm_one(16);
        let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
        let run = |batch_size: usize| -> Vec<u64> {
            monte_carlo_batched(10, SeedSequence::new(5), batch_size, |_, chunk| {
                let mut batch = DynamicReplicaBatch::new(
                    DynamicGraph::new(g.clone()),
                    spec,
                    &xi0,
                    chunk,
                    ChurnModel::edge_swap(2),
                    99,
                )
                .unwrap();
                batch
                    .run_until_converged(16, 400, 1e-10, 1)
                    .unwrap()
                    .into_iter()
                    .map(|r| if r.converged { r.steps } else { u64::MAX })
                    .collect()
            })
        };
        let one = run(1);
        let four = run(4);
        let ten = run(10);
        assert_eq!(one, four);
        assert_eq!(one, ten);
        assert!(one.iter().all(|&s| s != u64::MAX), "trials must converge");
    }
}
