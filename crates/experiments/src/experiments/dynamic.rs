//! DYN-CHURN — convergence on evolving topologies.
//!
//! The paper analyses a fixed communication graph; this experiment opens
//! the time-varying regime (cf. averaging inequalities over time-varying
//! graphs, arXiv:1910.14465). A NodeModel runs on a torus whose edges are
//! churned by degree-preserving swaps between epochs; the sweep measures
//! ε-convergence time as a function of the churn rate.
//!
//! Expectation: swaps turn the torus into an expander-like small world,
//! so *more* churn ⇒ *faster* convergence — a quantitative version of
//! the "diffusion loves rewiring" folklore. Rate 0 reproduces the static
//! batched engine bit for bit (gated by `tests/batch_equivalence.rs`).
//!
//! Each sweep cell is one declarative scenario: the Scenario API
//! dispatches it to `DynamicReplicaBatch::run_until_converged` (the
//! epoch-boundary stopping rule, early retirement, SoA compaction) over
//! seed chunks. The churn seed is fixed per cell (not per chunk), so
//! every replica sees the same topology trajectory and per-trial results
//! are independent of batch size and thread schedule, exactly like the
//! static sweeps.

use crate::ExperimentContext;
use od_sim::{
    run_sweep, ChurnModelSpec, ChurnSpec, GraphSpec, InitSpec, ModelSpec, PotentialSpec,
    ScenarioSpec, StopRuleSpec, StopSpec, SweepAxis, SweepSpec,
};
use od_stats::{fmt_float, Table, Welford};

/// ε for the potential-based convergence check (Eq. 3).
const EPS: f64 = 1e-12;

/// Swaps-per-epoch sweep points.
const CHURN_RATES: [usize; 4] = [0, 1, 4, 16];

/// The declarative scenario of one DYN-CHURN sweep cell.
#[allow(clippy::too_many_arguments)] // one declarative sweep cell
fn cell_scenario(
    side: usize,
    swaps: usize,
    steps_per_epoch: u64,
    max_epochs: u64,
    trials: usize,
    seed: u64,
    churn_seed: u64,
) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ModelSpec::Node {
            alpha: 0.5,
            k: 2,
            lazy: false,
        },
        GraphSpec::Torus {
            rows: side,
            cols: side,
        },
        0,
    );
    spec.init = InitSpec::PmOne;
    spec.replicas = trials;
    spec.seed = seed;
    spec.churn = Some(ChurnSpec {
        model: ChurnModelSpec::EdgeSwap { swaps },
        steps_per_epoch,
        seed: churn_seed,
    });
    spec.stop = StopSpec::Converge {
        epsilon: EPS,
        rule: StopRuleSpec::Block,
        potential: PotentialSpec::Pi,
        budget: max_epochs * steps_per_epoch,
    };
    spec
}

/// The DYN-CHURN sweep as one declarative [`SweepSpec`]: a crossed
/// `churn` axis over the swap rates plus zipped per-cell `seed` /
/// `churn_seed` values reproducing the legacy per-cell streams (cell
/// `idx` keeps trial seeds from `ctx.seeds.child(941 + idx)` and the
/// churn stream `ctx.seeds.child(940).seed(idx)`), so the table is
/// byte-identical to the per-cell loop this replaced. The committed
/// `examples/scenarios/dyn_churn_sweep.scn` is this spec's full-mode
/// text form, pinned equal in `tests/sweep_files.rs`.
pub fn churn_convergence_sweep(ctx: &ExperimentContext) -> SweepSpec {
    let trials = ctx.trials(64, 8);
    let side = if ctx.quick { 8 } else { 16 };
    let steps_per_epoch = (side * side) as u64;
    let max_epochs: u64 = if ctx.quick { 1_500 } else { 3_000 };
    let cells = CHURN_RATES.len() as u64;
    let mut base = cell_scenario(side, 0, steps_per_epoch, max_epochs, trials, 0, 0);
    base.name = Some("dyn-churn".into());
    SweepSpec {
        base,
        axes: vec![
            SweepAxis::Churn(CHURN_RATES.to_vec()),
            SweepAxis::Seed(
                (0..cells)
                    .map(|idx| ctx.seeds.child(941 + idx).master())
                    .collect(),
            ),
            SweepAxis::ChurnSeed(
                (0..cells)
                    .map(|idx| ctx.seeds.child(940).seed(idx))
                    .collect(),
            ),
        ],
    }
}

/// DYN-CHURN: NodeModel ε-convergence time vs edge-swap churn rate on a
/// torus, batched over a shared evolving topology. Runs as one sweep
/// ([`churn_convergence_sweep`]): the torus is built once and shared by
/// every cell, and each cell keeps one churn stream so per-trial
/// results stay batch-size independent.
pub fn churn_convergence(ctx: &ExperimentContext) -> Vec<Table> {
    let trials = ctx.trials(64, 8);
    let side = if ctx.quick { 8 } else { 16 };
    let steps_per_epoch = (side * side) as u64;

    let sweep = churn_convergence_sweep(ctx);
    let report = run_sweep(&sweep).expect("the DYN-CHURN sweep is valid");
    let mut t = Table::new(
        format!(
            "DYN-CHURN — NodeModel(k=2, alpha=0.5) steps to phi <= {EPS} on torus({side}x{side}) \
             under edge-swap churn ({trials} trials, epoch = {steps_per_epoch} steps)"
        ),
        &[
            "swaps_per_epoch",
            "mean_steps",
            "std_error",
            "mean_epochs",
            "converged_frac",
            "topology_mutations",
        ],
    );
    for (cell, &swaps) in report.cells.iter().zip(CHURN_RATES.iter()) {
        let steps: Welford = cell.report.trials.iter().map(|t| t.steps as f64).collect();
        t.push_row(vec![
            swaps.to_string(),
            fmt_float(steps.mean().unwrap_or(f64::NAN)),
            fmt_float(steps.standard_error().unwrap_or(f64::NAN)),
            fmt_float(steps.mean().unwrap_or(f64::NAN) / steps_per_epoch as f64),
            fmt_float(cell.report.converged_count() as f64 / trials as f64),
            cell.report.max_mutations().to_string(),
        ]);
    }
    vec![t]
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_sim::Simulation;
    use od_stats::SeedSequence;

    /// The schedule-independence contract the sweep relies on: per-trial
    /// convergence times are identical whether trials run one per batch
    /// or many per batch, because the churn stream is a function of the
    /// cell's churn seed alone.
    #[test]
    fn dynamic_sweep_results_independent_of_batch_size() {
        let run = |batch_size: usize| -> Vec<u64> {
            let mut spec = cell_scenario(4, 2, 16, 400, 10, SeedSequence::new(5).master(), 99);
            spec.batch = batch_size;
            spec.stop = StopSpec::Converge {
                epsilon: 1e-10,
                rule: StopRuleSpec::Block,
                potential: PotentialSpec::Pi,
                budget: 400 * 16,
            };
            let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
            report
                .trials
                .iter()
                .map(|t| if t.converged { t.steps } else { u64::MAX })
                .collect()
        };
        let one = run(1);
        let four = run(4);
        let ten = run(10);
        assert_eq!(one, four);
        assert_eq!(one, ten);
        assert!(one.iter().all(|&s| s != u64::MAX), "trials must converge");
    }
}
