//! Shared helpers for the experiment modules.

use od_core::{
    run_until_converged, ConvergeConfig, ConvergenceReport, EdgeModel, EdgeModelParams, KernelSpec,
    NodeModel, NodeModelParams, OpinionProcess, ReplicaBatch, StopRule,
};
use od_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Replicas per [`ReplicaBatch`] in the batched convergence sweeps: big
/// enough to amortise the shared-graph setup, small enough to keep every
/// worker thread busy at quick-mode trial counts.
pub const CONVERGE_REPLICAS_PER_BATCH: usize = 16;

/// Balanced ±1 initial values (exactly centered for even `n`; centered by
/// subtraction otherwise). The paper's bounds are scale-free in `‖ξ(0)‖²`,
/// and ±1 keeps `‖ξ‖² = n` so normalized variances are easy to read.
pub fn pm_one(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    if n % 2 == 1 {
        let mean = v.iter().sum::<f64>() / n as f64;
        for x in &mut v {
            *x -= mean;
        }
    }
    v
}

/// Runs a NodeModel to `φ ≤ eps` and returns the estimated convergence
/// value `F = M(T)`.
///
/// # Panics
///
/// Panics if the run does not converge within the (generous) step budget.
pub fn estimate_f_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> f64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "NodeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Runs an EdgeModel to `φ ≤ eps` and returns `F = M(T)` (equal to the
/// common value at convergence).
///
/// # Panics
///
/// Panics if the run does not converge within the step budget.
pub fn estimate_f_edge(graph: &Graph, alpha: f64, xi0: &[f64], seed: u64, eps: f64) -> f64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "EdgeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Runs one seed chunk of a NodeModel convergence sweep through the
/// batched engine ([`ReplicaBatch::run_until_converged`]) with the
/// scalar-identical [`StopRule::Exact`] stopping rule, so per-trial
/// stopping times and trajectories are bit-identical to the scalar
/// [`run_until_converged`] path this replaces. Inner threads are pinned to
/// 1 because `monte_carlo_batched` already parallelises across chunks.
fn node_converge_chunk(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seeds: &[u64],
    eps: f64,
) -> Vec<ConvergenceReport> {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut batch =
        ReplicaBatch::new(graph, KernelSpec::Node(params), xi0, seeds).expect("valid batch");
    batch
        .run_until_converged(
            ConvergeConfig::new(eps, step_budget(graph))
                .with_stop(StopRule::Exact)
                .with_threads(1),
        )
        .expect("valid epsilon")
}

/// Batched sibling of [`steps_to_eps_node`]: ε-convergence steps for one
/// seed chunk, identical per seed to the scalar helper.
pub fn steps_to_eps_node_batched(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seeds: &[u64],
    eps: f64,
) -> Vec<u64> {
    node_converge_chunk(graph, alpha, k, xi0, seeds, eps)
        .into_iter()
        .map(|r| r.steps)
        .collect()
}

/// Batched sibling of [`estimate_f_node`]: one `F = M(T)` estimate per
/// seed in the chunk. The exact stopping rule carries the tracked
/// weighted average through the report, so each `F` is **bit-identical**
/// to the scalar `estimate_f_node` result for the same seed.
///
/// # Panics
///
/// Panics if any replica fails to converge within the step budget.
pub fn estimate_f_node_batched(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seeds: &[u64],
    eps: f64,
) -> Vec<f64> {
    node_converge_chunk(graph, alpha, k, xi0, seeds, eps)
        .into_iter()
        .map(|report| {
            assert!(
                report.converged,
                "NodeModel replica failed to converge within the step budget"
            );
            report.weighted_average
        })
        .collect()
}

/// Steps for a NodeModel to reach `φ ≤ eps`.
pub fn steps_to_eps_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    run_until_converged(&mut model, &mut rng, eps, step_budget(graph)).steps
}

/// Steps for an EdgeModel to reach `φ̄_V ≤ eps` (the potential of
/// Prop. D.1).
pub fn steps_to_eps_edge_uniform(
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    while model.state().potential_uniform() > eps && model.time() < budget {
        model.step(&mut rng);
    }
    model.time()
}

/// A generous per-run step budget scaling with graph size.
fn step_budget(graph: &Graph) -> u64 {
    200_000_000u64.min(2_000_000u64.max((graph.n() as u64).pow(2) * 2_000))
}
