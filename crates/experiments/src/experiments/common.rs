//! Shared helpers for the experiment modules.

use od_core::{
    run_until_converged, EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess,
};
use od_graph::Graph;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Balanced ±1 initial values (exactly centered for even `n`; centered by
/// subtraction otherwise). The paper's bounds are scale-free in `‖ξ(0)‖²`,
/// and ±1 keeps `‖ξ‖² = n` so normalized variances are easy to read.
pub fn pm_one(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    if n % 2 == 1 {
        let mean = v.iter().sum::<f64>() / n as f64;
        for x in &mut v {
            *x -= mean;
        }
    }
    v
}

/// Runs a NodeModel to `φ ≤ eps` and returns the estimated convergence
/// value `F = M(T)`.
///
/// # Panics
///
/// Panics if the run does not converge within the (generous) step budget.
pub fn estimate_f_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> f64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "NodeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Runs an EdgeModel to `φ ≤ eps` and returns `F = M(T)` (equal to the
/// common value at convergence).
///
/// # Panics
///
/// Panics if the run does not converge within the step budget.
pub fn estimate_f_edge(graph: &Graph, alpha: f64, xi0: &[f64], seed: u64, eps: f64) -> f64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "EdgeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Steps for a NodeModel to reach `φ ≤ eps`.
pub fn steps_to_eps_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    run_until_converged(&mut model, &mut rng, eps, step_budget(graph)).steps
}

/// Steps for an EdgeModel to reach `φ̄_V ≤ eps` (the potential of
/// Prop. D.1).
pub fn steps_to_eps_edge_uniform(
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    while model.state().potential_uniform() > eps && model.time() < budget {
        model.step(&mut rng);
    }
    model.time()
}

/// A generous per-run step budget scaling with graph size.
fn step_budget(graph: &Graph) -> u64 {
    200_000_000u64.min(2_000_000u64.max((graph.n() as u64).pow(2) * 2_000))
}
