//! Shared helpers for the experiment modules.
//!
//! The convergence-driven sweeps (T22-CONV / T22-K / PB2, the Var(F)
//! estimations, T24-CONV, DYN-CHURN) all run through the unified Scenario
//! API (`od-sim`): the experiment builds one declarative [`ScenarioSpec`]
//! and the `Simulation` dispatcher picks the engine — the retirement-aware
//! streaming convergence runner for static sweeps, the dynamic batch under
//! churn. Because trial `i` always runs from `seeds.seed(i)` with the
//! scalar-identical exact stopping rule, the per-trial statistics are
//! **bit-identical** to the direct-engine (and original scalar) paths the
//! scenarios replaced — `tests/batch_equivalence.rs` gates exactly that.
//!
//! The scalar helpers below remain the independent reference
//! implementations those gates (and the smaller experiments) compare
//! against.

use od_core::{
    run_until_converged, EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess,
};
use od_graph::Graph;
use od_sim::{
    GraphSpec, InitSpec, ModelSpec, PotentialSpec, ScenarioSpec, Simulation, SimulationReport,
    StopRuleSpec, StopSpec,
};
use od_stats::SeedSequence;
use rand::rngs::StdRng;
use rand::SeedableRng;

pub use od_sim::pm_one;

/// Builds the scenario every static ε-convergence sweep shares: `trials`
/// replicas of `model` on `graph` from `xi0`, the scalar-identical exact
/// stopping rule on `potential`, per-trial seeds derived from `seeds`.
/// `graph_spec` is the descriptive generator entry; the sweep runs on the
/// supplied `graph` instance (shared with the experiment's spectral
/// predictions).
#[allow(clippy::too_many_arguments)] // one declarative sweep cell
pub fn converge_simulation(
    graph_spec: GraphSpec,
    graph: &Graph,
    model: ModelSpec,
    potential: PotentialSpec,
    xi0: &[f64],
    trials: usize,
    seeds: SeedSequence,
    eps: f64,
) -> Simulation {
    let mut spec = ScenarioSpec::new(model, graph_spec, 0);
    spec.init = InitSpec::PmOne; // overridden below; keeps the spec valid
    spec.replicas = trials;
    spec.seed = seeds.master();
    spec.stop = StopSpec::Converge {
        epsilon: eps,
        rule: StopRuleSpec::Exact,
        potential,
        budget: step_budget(graph),
    };
    Simulation::from_spec_with_graph(&spec, graph.clone())
        .expect("experiment scenarios are valid")
        .with_initial_values(xi0.to_vec())
        .expect("xi0 matches the graph")
}

/// NodeModel ε-convergence sweep through the Scenario API (see
/// [`converge_simulation`]); returns the unified report.
#[allow(clippy::too_many_arguments)] // one declarative sweep cell
pub fn run_node_converge(
    graph_spec: GraphSpec,
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    trials: usize,
    seeds: SeedSequence,
    eps: f64,
) -> SimulationReport {
    converge_simulation(
        graph_spec,
        graph,
        ModelSpec::Node {
            alpha,
            k,
            lazy: false,
        },
        PotentialSpec::Pi,
        xi0,
        trials,
        seeds,
        eps,
    )
    .run()
    .expect("scenario sweep runs")
}

/// EdgeModel sweep to `φ̄_V ≤ eps` (Prop. D.1's uniform potential)
/// through the Scenario API — the exact-uniform arm of the convergence
/// engine, bit-identical to the scalar `potential_uniform` loop.
pub fn run_edge_converge_uniform(
    graph_spec: GraphSpec,
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    trials: usize,
    seeds: SeedSequence,
    eps: f64,
) -> SimulationReport {
    converge_simulation(
        graph_spec,
        graph,
        ModelSpec::Edge { alpha, lazy: false },
        PotentialSpec::Uniform,
        xi0,
        trials,
        seeds,
        eps,
    )
    .run()
    .expect("scenario sweep runs")
}

/// Per-trial `F = M(T)` estimates from a converged scenario report.
///
/// # Panics
///
/// Panics if any trial failed to converge within the step budget.
pub fn f_estimates(report: &SimulationReport) -> Vec<f64> {
    report
        .trials
        .iter()
        .map(|t| {
            assert!(t.converged, "trial failed to converge within the budget");
            t.estimate
        })
        .collect()
}

/// Runs a NodeModel to `φ ≤ eps` and returns the estimated convergence
/// value `F = M(T)`.
///
/// # Panics
///
/// Panics if the run does not converge within the (generous) step budget.
pub fn estimate_f_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> f64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "NodeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Runs an EdgeModel to `φ ≤ eps` and returns `F = M(T)` (equal to the
/// common value at convergence).
///
/// # Panics
///
/// Panics if the run does not converge within the step budget.
pub fn estimate_f_edge(graph: &Graph, alpha: f64, xi0: &[f64], seed: u64, eps: f64) -> f64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    let report = run_until_converged(&mut model, &mut rng, eps, budget);
    assert!(
        report.converged,
        "EdgeModel failed to converge in {budget} steps"
    );
    model.state().weighted_average()
}

/// Steps for a NodeModel to reach `φ ≤ eps` (scalar reference path).
pub fn steps_to_eps_node(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = NodeModelParams::new(alpha, k).expect("valid params");
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    run_until_converged(&mut model, &mut rng, eps, step_budget(graph)).steps
}

/// Steps for an EdgeModel to reach `φ̄_V ≤ eps` (the potential of
/// Prop. D.1; scalar reference path for the exact-uniform engine arm).
pub fn steps_to_eps_edge_uniform(
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    seed: u64,
    eps: f64,
) -> u64 {
    let params = EdgeModelParams::new(alpha).expect("valid params");
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).expect("valid model");
    let mut rng = StdRng::seed_from_u64(seed);
    let budget = step_budget(graph);
    while model.state().potential_uniform() > eps && model.time() < budget {
        model.step(&mut rng);
    }
    model.time()
}

/// A generous per-run step budget scaling with graph size — the budget
/// every convergence scenario and scalar reference shares.
pub fn step_budget(graph: &Graph) -> u64 {
    200_000_000u64.min(2_000_000u64.max((graph.n() as u64).pow(2) * 2_000))
}
