//! One module per experiment family; the mapping to paper results lives in
//! [`crate::registry`] and `DESIGN.md` §4.

pub mod comparison;
pub mod convergence;
pub mod duality;
pub mod dynamic;
pub mod higher_moments;
pub mod martingale;
pub mod potential;
pub mod stationary;
pub mod variance;

pub(crate) mod common;
