//! Experiment runner binary.
//!
//! ```text
//! run-experiments --all [--quick]
//! run-experiments P58 L57 FIG1 [--quick]
//! run-experiments --list
//! ```
//!
//! Tables print to stdout; CSV copies land in `results/<ID>_<i>.csv`.

use od_experiments::{find, registry, ExperimentContext};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in registry() {
            println!("{:10} {}", e.id, e.description);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    let ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::full()
    };
    let run_all = args.iter().any(|a| a == "--all");
    let ids: Vec<String> = if run_all {
        registry().iter().map(|e| e.id.to_string()).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect()
    };
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    std::fs::create_dir_all("results").expect("create results directory");
    let mut failed = false;
    for id in &ids {
        let Some(experiment) = find(id) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            failed = true;
            continue;
        };
        println!("\n=== {} — {} ===", experiment.id, experiment.description);
        let start = std::time::Instant::now();
        let tables = (experiment.run)(&ctx);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_plain_text());
            let path = format!("results/{}_{}.csv", experiment.id, i);
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(table.to_csv().as_bytes())
                .expect("write csv");
            let md_path = format!("results/{}_{}.md", experiment.id, i);
            let mut md = std::fs::File::create(&md_path).expect("create md");
            md.write_all(format!("### {}\n\n", table.title()).as_bytes())
                .expect("write md");
            md.write_all(table.to_markdown().as_bytes())
                .expect("write md");
        }
        println!(
            "[{} finished in {:.1}s]",
            experiment.id,
            start.elapsed().as_secs_f64()
        );
    }
    if failed {
        std::process::exit(2);
    }
}

fn print_usage() {
    println!("usage: run-experiments [--quick] --all | <ID>... | --list");
    println!("experiments:");
    for e in registry() {
        println!("  {:10} {}", e.id, e.description);
    }
}
