//! Experiment runner binary.
//!
//! ```text
//! run-experiments --all [--quick]
//! run-experiments P58 L57 FIG1 [--quick]
//! run-experiments scenario <file.scn>... [--quick] [--csv <path>] [--json <path>]
//! run-experiments --list
//! ```
//!
//! Tables print to stdout; CSV copies land in `results/<ID>_<i>.csv`.
//! The `scenario` subcommand parses declarative `.scn` files (see
//! `examples/scenarios/` and the README "Scenarios" section) — plain
//! single-cell scenarios or `sweep` grids — lets the unified Scenario
//! API (`od-sim`) dispatch each cell to the optimal engine, and prints
//! the per-cell summary plus, for common-random-number sweeps, the
//! paired-contrast table against cell 0. `--csv` / `--json` stream every
//! trial of every cell to a per-trial sink file. `--quick` caps the
//! trial count for CI smoke runs. Files are processed independently: a
//! broken file is reported and the rest still run (exit code 1 at the
//! end if any failed).

use od_experiments::{find, registry, ExperimentContext};
use od_sim::{run_sweep, Simulation, SweepAxis, SweepReport, SweepSpec};
use od_stats::{fmt_float, SeedSequence, Table};
use std::io::Write;
use std::path::Path;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in registry() {
            println!("{:10} {}", e.id, e.description);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    // `--csv` / `--json` take a value; everything else non-flag is a
    // positional (subcommand, experiment id or scenario file).
    let mut csv_sink: Option<String> = None;
    let mut json_sink: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" | "--json" => {
                let Some(value) = it.next() else {
                    eprintln!("{arg} needs a file path");
                    std::process::exit(2);
                };
                if arg == "--csv" {
                    csv_sink = Some(value.clone());
                } else {
                    json_sink = Some(value.clone());
                }
            }
            a if a.starts_with("--") => {} // handled above (--quick, --all)
            a => positional.push(a.to_string()),
        }
    }
    if positional.first().map(String::as_str) == Some("scenario") {
        let files = &positional[1..];
        if files.is_empty() {
            eprintln!(
                "usage: run_experiments scenario <file.scn>... [--quick] [--csv <path>] \
                 [--json <path>]"
            );
            std::process::exit(2);
        }
        let mut rows: Vec<TrialRow> = Vec::new();
        let mut failed = false;
        for file in files {
            match run_scenario_file(file, quick) {
                Ok(mut file_rows) => rows.append(&mut file_rows),
                Err(e) => {
                    eprintln!("{file}: {e}");
                    failed = true;
                }
            }
        }
        if let Err(e) = write_sinks(&rows, csv_sink.as_deref(), json_sink.as_deref()) {
            eprintln!("sink: {e}");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        return;
    }
    let ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::full()
    };
    let run_all = args.iter().any(|a| a == "--all");
    let ids: Vec<String> = if run_all {
        registry().iter().map(|e| e.id.to_string()).collect()
    } else {
        positional
    };
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut failed = false;
    for id in &ids {
        let Some(experiment) = find(id) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            failed = true;
            continue;
        };
        println!("\n=== {} — {} ===", experiment.id, experiment.description);
        let start = std::time::Instant::now();
        let tables = (experiment.run)(&ctx);
        if let Err(e) = write_result_tables(experiment.id, &tables) {
            eprintln!("{}: writing results/ failed: {e}", experiment.id);
            failed = true;
        }
        println!(
            "[{} finished in {:.1}s]",
            experiment.id,
            start.elapsed().as_secs_f64()
        );
    }
    if failed {
        std::process::exit(2);
    }
}

/// Prints every table and writes the CSV + markdown copies under
/// `results/`, creating the directory if absent (the binary may run
/// from any cwd).
fn write_result_tables(id: &str, tables: &[Table]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    for (i, table) in tables.iter().enumerate() {
        println!("{}", table.to_plain_text());
        std::fs::write(format!("results/{id}_{i}.csv"), table.to_csv())?;
        let md = format!("### {}\n\n{}", table.title(), table.to_markdown());
        std::fs::write(format!("results/{id}_{i}.md"), md)?;
    }
    Ok(())
}

/// One per-trial sink record: a cell coordinate plus the trial's
/// results.
struct TrialRow {
    scenario: String,
    cell: usize,
    label: String,
    trial: usize,
    seed: u64,
    steps: u64,
    converged: bool,
    potential: f64,
    estimate: f64,
    winner: Option<u32>,
    mutations: u64,
}

/// Writes the collected per-trial rows to the requested sinks, creating
/// parent directories as needed.
fn write_sinks(rows: &[TrialRow], csv: Option<&str>, json: Option<&str>) -> std::io::Result<()> {
    let create = |path: &str| -> std::io::Result<std::fs::File> {
        if let Some(parent) = Path::new(path).parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        std::fs::File::create(path)
    };
    if let Some(path) = csv {
        let mut f = create(path)?;
        writeln!(
            f,
            "scenario,cell,label,trial,seed,steps,converged,potential,estimate,winner,mutations"
        )?;
        for r in rows {
            writeln!(
                f,
                "{},{},{},{},{},{},{},{},{},{},{}",
                r.scenario,
                r.cell,
                r.label,
                r.trial,
                r.seed,
                r.steps,
                r.converged,
                r.potential,
                r.estimate,
                r.winner.map(|w| w.to_string()).unwrap_or_default(),
                r.mutations,
            )?;
        }
    }
    if let Some(path) = json {
        let mut f = create(path)?;
        // Hand-rolled JSON (no serde in the dependency tree): an array
        // of flat objects, non-finite floats as null.
        let num = |x: f64| {
            if x.is_finite() {
                x.to_string()
            } else {
                "null".to_string()
            }
        };
        writeln!(f, "[")?;
        for (i, r) in rows.iter().enumerate() {
            let comma = if i + 1 < rows.len() { "," } else { "" };
            writeln!(
                f,
                "  {{\"scenario\":{:?},\"cell\":{},\"label\":{:?},\"trial\":{},\"seed\":{},\
                 \"steps\":{},\"converged\":{},\"potential\":{},\"estimate\":{},\"winner\":{},\
                 \"mutations\":{}}}{comma}",
                r.scenario,
                r.cell,
                r.label,
                r.trial,
                r.seed,
                r.steps,
                r.converged,
                num(r.potential),
                num(r.estimate),
                r.winner.map_or("null".to_string(), |w| w.to_string()),
                r.mutations,
            )?;
        }
        writeln!(f, "]")?;
    }
    Ok(())
}

/// Parses, dispatches and summarises one `.scn` file — a plain scenario
/// or a `sweep` grid — and returns its per-trial sink rows. In quick
/// mode every cell's replica count is capped at 4 (a CI smoke run, not
/// a measurement).
fn run_scenario_file(path: &str, quick: bool) -> Result<Vec<TrialRow>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let mut sweep = SweepSpec::parse(&text)?;
    if quick {
        sweep.base.replicas = sweep.base.replicas.min(4);
        for axis in &mut sweep.axes {
            if let SweepAxis::Replicas(values) = axis {
                for v in values {
                    *v = (*v).min(4);
                }
            }
        }
    }
    let name = sweep.base.name.clone().unwrap_or_else(|| path.to_string());
    if sweep.axes.is_empty() {
        return run_single_scenario(&name, &sweep);
    }
    let start = std::time::Instant::now();
    let report = run_sweep(&sweep)?;
    println!(
        "\n=== sweep {name} — {} cell(s), {} distinct graph(s), {} ===",
        report.cells.len(),
        report.distinct_graphs,
        if report.crn {
            "CRN-paired seeds"
        } else {
            "independent seeds"
        },
    );
    let mut t = Table::new(
        format!("sweep {name} — per-cell summary"),
        &[
            "cell",
            "label",
            "engine",
            "trials",
            "converged",
            "steps_mean",
            "steps_std",
            "F_mean",
        ],
    );
    for cell in &report.cells {
        let steps = cell.report.steps_summary();
        t.push_row(vec![
            cell.cell.index.to_string(),
            cell.cell.label.clone(),
            cell.report.engine.to_string(),
            cell.report.trials.len().to_string(),
            cell.report.converged_count().to_string(),
            fmt_float(steps.mean),
            fmt_float(steps.std),
            cell.report
                .estimate_summary()
                .map_or_else(|| "-".into(), |e| fmt_float(e.mean)),
        ]);
    }
    println!("{}", t.to_plain_text());
    print_contrasts(&name, &report);
    println!("[finished in {:.1}s]", start.elapsed().as_secs_f64());
    Ok(sink_rows(&name, &report))
}

/// The paired-contrast table of a CRN sweep (skipped for independent
/// seeding or single-cell sweeps, where pairing is undefined).
fn print_contrasts(name: &str, report: &SweepReport) {
    let contrasts = report.contrasts();
    if contrasts.is_empty() {
        return;
    }
    let mut t = Table::new(
        format!("sweep {name} — paired contrasts vs cell 0 (steps, CRN)"),
        &[
            "cell",
            "label",
            "mean_diff",
            "std_err",
            "ci95_lo",
            "ci95_hi",
            "resolved",
        ],
    );
    for c in &contrasts {
        let Some(steps) = &c.steps else {
            t.push_row(vec![
                c.cell.to_string(),
                c.label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "unpaired (replica counts differ)".into(),
            ]);
            continue;
        };
        t.push_row(vec![
            c.cell.to_string(),
            c.label.clone(),
            fmt_float(steps.mean_diff),
            fmt_float(steps.std_err),
            fmt_float(steps.ci95.0),
            fmt_float(steps.ci95.1),
            steps.resolved().to_string(),
        ]);
    }
    println!("{}", t.to_plain_text());
}

/// Flattens a sweep report into per-trial sink rows. Trial `i` of a
/// cell runs from `SeedSequence::new(cell.spec.seed).seed(i)` — the
/// derivation `od-sim`'s Monte-Carlo runner uses — so the recorded seed
/// reproduces the trial standalone.
fn sink_rows(name: &str, report: &SweepReport) -> Vec<TrialRow> {
    let mut rows = Vec::new();
    for cell in &report.cells {
        let seeds = SeedSequence::new(cell.cell.spec.seed);
        for (i, trial) in cell.report.trials.iter().enumerate() {
            rows.push(TrialRow {
                scenario: name.to_string(),
                cell: cell.cell.index,
                label: cell.cell.label.clone(),
                trial: i,
                seed: seeds.seed(i as u64),
                steps: trial.steps,
                converged: trial.converged,
                potential: trial.potential,
                estimate: trial.estimate,
                winner: trial.winner,
                mutations: trial.mutations,
            });
        }
    }
    rows
}

/// The original single-scenario path: detailed metric table for one
/// cell.
fn run_single_scenario(
    name: &str,
    sweep: &SweepSpec,
) -> Result<Vec<TrialRow>, Box<dyn std::error::Error>> {
    let spec = &sweep.base;
    let sim = Simulation::from_spec(spec)?;
    println!(
        "\n=== scenario {name} — engine: {} (n = {}, m = {}, {} trial(s)) ===",
        sim.engine(),
        sim.graph().n(),
        sim.graph().m(),
        spec.replicas,
    );
    let start = std::time::Instant::now();
    let report = sim.run()?;
    let steps = report.steps_summary();
    let mut t = Table::new(
        format!("scenario {name} — per-trial summary"),
        &["metric", "value"],
    );
    t.push_row(vec!["engine".into(), report.engine.to_string()]);
    t.push_row(vec!["trials".into(), report.trials.len().to_string()]);
    t.push_row(vec![
        "converged".into(),
        report.converged_count().to_string(),
    ]);
    t.push_row(vec!["steps_mean".into(), fmt_float(steps.mean)]);
    t.push_row(vec!["steps_median".into(), fmt_float(steps.median)]);
    t.push_row(vec!["steps_std".into(), fmt_float(steps.std)]);
    t.push_row(vec!["steps_min".into(), fmt_float(steps.min)]);
    t.push_row(vec!["steps_max".into(), fmt_float(steps.max)]);
    if let Some(estimate) = report.estimate_summary() {
        t.push_row(vec!["F_mean".into(), fmt_float(estimate.mean)]);
        t.push_row(vec!["F_std".into(), fmt_float(estimate.std)]);
    }
    if report.max_mutations() > 0 {
        t.push_row(vec![
            "topology_mutations".into(),
            report.max_mutations().to_string(),
        ]);
    }
    if let Some(trace) = &report.trace {
        t.push_row(vec!["trace_samples".into(), trace.len().to_string()]);
        t.push_row(vec![
            "trace_final_phi".into(),
            fmt_float(trace.last().map_or(f64::NAN, |&(_, phi)| phi)),
        ]);
    }
    println!("{}", t.to_plain_text());
    println!("[finished in {:.1}s]", start.elapsed().as_secs_f64());
    let seeds = SeedSequence::new(spec.seed);
    let rows = report
        .trials
        .iter()
        .enumerate()
        .map(|(i, trial)| TrialRow {
            scenario: name.to_string(),
            cell: 0,
            label: String::new(),
            trial: i,
            seed: seeds.seed(i as u64),
            steps: trial.steps,
            converged: trial.converged,
            potential: trial.potential,
            estimate: trial.estimate,
            winner: trial.winner,
            mutations: trial.mutations,
        })
        .collect();
    Ok(rows)
}

fn print_usage() {
    println!(
        "usage: run-experiments [--quick] --all | <ID>... | \
         scenario <file.scn>... [--csv <path>] [--json <path>] | --list"
    );
    println!("experiments:");
    for e in registry() {
        println!("  {:10} {}", e.id, e.description);
    }
}
