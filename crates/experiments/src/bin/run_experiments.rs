//! Experiment runner binary.
//!
//! ```text
//! run-experiments --all [--quick]
//! run-experiments P58 L57 FIG1 [--quick]
//! run-experiments scenario <file.scn>... [--quick] [--csv <path>] [--json <path>]
//! run-experiments serve [--addr <host:port>] [--workers <n>] [--checkpoint-dir <dir>]
//! run-experiments submit <file.scn>... [--addr <host:port>]
//! run-experiments --list
//! ```
//!
//! Tables print to stdout; CSV copies land in `results/<ID>_<i>.csv`.
//! The `scenario` subcommand parses declarative `.scn` files (see
//! `examples/scenarios/` and the README "Scenarios" section) — plain
//! single-cell scenarios or `sweep` grids — lets the unified Scenario
//! API (`od-sim`) dispatch each cell to the optimal engine, and prints
//! the per-cell summary plus, for common-random-number sweeps, the
//! paired-contrast table against cell 0. `--csv` / `--json` stream every
//! trial of every cell to a per-trial sink file; sinks are created and
//! validated *before* any scenario runs, appended to after each file
//! (so a later parse error cannot discard earlier rows), and land via
//! temp-file + rename so a crash never leaves a torn sink. `--quick`
//! caps the trial count for CI smoke runs. Files are processed
//! independently: a broken file is reported and the rest still run
//! (exit code 1 at the end if any failed).
//!
//! `serve` starts the `od-serve` memoising scenario daemon; `submit`
//! sends `.scn` files to a running daemon and prints the streamed
//! response (per-trial `ROW` lines in the exact sink CSV format,
//! per-cell `CELL` summaries, CRN `CONTRAST` lines).

use od_experiments::{find, registry, ExperimentContext};
use od_serve::{Server, ServerConfig};
use od_sim::{cell_rows, run_sweep, sweep_rows, Simulation, SweepAxis, SweepReport, SweepSpec};
use od_sim::{TrialRow, CSV_HEADER};
use od_stats::{fmt_float, Table};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;

/// Default daemon address for `serve` / `submit` when `--addr` is not
/// given.
const DEFAULT_ADDR: &str = "127.0.0.1:4810";

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in registry() {
            println!("{:10} {}", e.id, e.description);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    // `--csv`/`--json`/`--addr`/`--workers`/`--checkpoint-dir` take a
    // value; everything else non-flag is a positional (subcommand,
    // experiment id or scenario file).
    let mut csv_sink: Option<String> = None;
    let mut json_sink: Option<String> = None;
    let mut addr: Option<String> = None;
    let mut workers: usize = 0;
    let mut checkpoint_dir: Option<String> = None;
    let mut positional: Vec<String> = Vec::new();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--csv" | "--json" | "--addr" | "--workers" | "--checkpoint-dir" => {
                let Some(value) = it.next() else {
                    eprintln!("{arg} needs a value");
                    std::process::exit(2);
                };
                match arg.as_str() {
                    "--csv" => csv_sink = Some(value.clone()),
                    "--json" => json_sink = Some(value.clone()),
                    "--addr" => addr = Some(value.clone()),
                    "--checkpoint-dir" => checkpoint_dir = Some(value.clone()),
                    _ => {
                        workers = value.parse().unwrap_or_else(|_| {
                            eprintln!("--workers needs a number, got '{value}'");
                            std::process::exit(2);
                        });
                    }
                }
            }
            a if a.starts_with("--") => {} // handled above (--quick, --all)
            a => positional.push(a.to_string()),
        }
    }
    let addr = addr.unwrap_or_else(|| DEFAULT_ADDR.to_string());
    match positional.first().map(String::as_str) {
        Some("scenario") => {
            std::process::exit(run_scenarios(
                &positional[1..],
                quick,
                csv_sink.as_deref(),
                json_sink.as_deref(),
            ));
        }
        Some("serve") => {
            std::process::exit(run_serve(&addr, workers, checkpoint_dir.as_deref()));
        }
        Some("submit") => {
            std::process::exit(run_submit(&positional[1..], &addr));
        }
        _ => {}
    }
    let ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::full()
    };
    let run_all = args.iter().any(|a| a == "--all");
    let ids: Vec<String> = if run_all {
        registry().iter().map(|e| e.id.to_string()).collect()
    } else {
        positional
    };
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    let mut failed = false;
    for id in &ids {
        let Some(experiment) = find(id) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            failed = true;
            continue;
        };
        println!("\n=== {} — {} ===", experiment.id, experiment.description);
        // od-lint: allow(D2) — wall-clock progress line on the console; never written into a result table
        let start = std::time::Instant::now();
        let tables = (experiment.run)(&ctx);
        if let Err(e) = write_result_tables(experiment.id, &tables) {
            eprintln!("{}: writing results/ failed: {e}", experiment.id);
            failed = true;
        }
        println!(
            "[{} finished in {:.1}s]",
            experiment.id,
            start.elapsed().as_secs_f64()
        );
    }
    if failed {
        std::process::exit(2);
    }
}

/// The `scenario` subcommand: runs each `.scn` file independently,
/// streaming per-trial rows into sinks that were opened before anything
/// ran. Returns the process exit code.
fn run_scenarios(files: &[String], quick: bool, csv: Option<&str>, json: Option<&str>) -> i32 {
    if files.is_empty() {
        eprintln!(
            "usage: run_experiments scenario <file.scn>... [--quick] [--csv <path>] \
             [--json <path>]"
        );
        return 2;
    }
    // Sinks are created and validated up front: an unwritable path fails
    // here, before minutes of scenario work, not after.
    let mut sinks: Vec<SinkWriter> = Vec::new();
    for (path, format) in [(csv, SinkFormat::Csv), (json, SinkFormat::Json)] {
        let Some(path) = path else { continue };
        match SinkWriter::create(path, format) {
            Ok(sink) => sinks.push(sink),
            Err(e) => {
                eprintln!("sink {path}: {e}");
                return 2;
            }
        }
    }
    let mut failed = false;
    for file in files {
        match run_scenario_file(file, quick) {
            // Rows reach the sinks after every file, so a parse error in
            // a later file never discards an earlier file's rows.
            Ok(file_rows) => {
                for sink in &mut sinks {
                    if let Err(e) = sink.append(&file_rows) {
                        eprintln!("sink: {e}");
                        failed = true;
                    }
                }
            }
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
            }
        }
    }
    // Finalise (rename into place) even after a failure: whatever ran
    // successfully is kept.
    for sink in sinks {
        if let Err(e) = sink.finish() {
            eprintln!("sink: {e}");
            failed = true;
        }
    }
    i32::from(failed)
}

/// The `serve` subcommand: starts the memoising daemon and blocks until
/// a client sends `SHUTDOWN`.
fn run_serve(addr: &str, workers: usize, checkpoint_dir: Option<&str>) -> i32 {
    let server = match Server::start(ServerConfig {
        addr: addr.to_string(),
        workers,
        checkpoint_dir: checkpoint_dir.map(PathBuf::from),
    }) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("serve: {e}");
            return 2;
        }
    };
    // The bound address (the OS picks the port for `--addr host:0`);
    // stdout is line-buffered, so clients scripting around the daemon
    // can read this immediately.
    println!("od-serve listening on {}", server.addr());
    server.wait();
    println!("od-serve stopped");
    0
}

/// The `submit` subcommand: streams each `.scn` file to a running
/// daemon and prints the response verbatim.
fn run_submit(files: &[String], addr: &str) -> i32 {
    if files.is_empty() {
        eprintln!("usage: run_experiments submit <file.scn>... [--addr <host:port>]");
        return 2;
    }
    let mut failed = false;
    for file in files {
        let text = match std::fs::read_to_string(file) {
            Ok(text) => text,
            Err(e) => {
                eprintln!("{file}: {e}");
                failed = true;
                continue;
            }
        };
        match submit_one(addr, &text) {
            Ok(response) => {
                print!("{response}");
                if response.starts_with("ERR") {
                    failed = true;
                }
            }
            Err(e) => {
                eprintln!("{file}: {addr}: {e}");
                failed = true;
            }
        }
    }
    i32::from(failed)
}

/// One `SUBMIT` round trip: sends the scenario text, reads through the
/// terminating `DONE` (or `ERR`) line.
fn submit_one(addr: &str, scn: &str) -> std::io::Result<String> {
    let stream = TcpStream::connect(addr)?;
    let mut reader = BufReader::new(stream.try_clone()?);
    let mut writer = stream;
    write!(writer, "SUBMIT {}\n{scn}", scn.len())?;
    writer.flush()?;
    let mut response = String::new();
    loop {
        let mut line = String::new();
        if reader.read_line(&mut line)? == 0 {
            return Err(std::io::Error::new(
                std::io::ErrorKind::UnexpectedEof,
                "daemon closed the connection mid-response",
            ));
        }
        response.push_str(&line);
        if line.starts_with("DONE") || line.starts_with("ERR") {
            return Ok(response);
        }
    }
}

/// Prints every table and writes the CSV + markdown copies under
/// `results/`, creating the directory if absent (the binary may run
/// from any cwd).
fn write_result_tables(id: &str, tables: &[Table]) -> std::io::Result<()> {
    std::fs::create_dir_all("results")?;
    for (i, table) in tables.iter().enumerate() {
        println!("{}", table.to_plain_text());
        std::fs::write(format!("results/{id}_{i}.csv"), table.to_csv())?;
        let md = format!("### {}\n\n{}", table.title(), table.to_markdown());
        std::fs::write(format!("results/{id}_{i}.md"), md)?;
    }
    Ok(())
}

#[derive(Clone, Copy)]
enum SinkFormat {
    Csv,
    Json,
}

/// An incrementally-written per-trial sink. The file is created (parent
/// directories and all) the moment the writer is, so path problems
/// surface before any scenario runs; rows land after every appended
/// batch; and the finished file reaches its final path via temp-file +
/// rename, so readers never observe a header-only or half-written sink.
struct SinkWriter {
    format: SinkFormat,
    path: PathBuf,
    tmp: PathBuf,
    file: std::fs::File,
    rows: usize,
}

impl SinkWriter {
    fn create(path: &str, format: SinkFormat) -> std::io::Result<SinkWriter> {
        let final_path = PathBuf::from(path);
        if let Some(parent) = final_path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        let tmp = PathBuf::from(format!("{path}.{}.tmp", std::process::id()));
        let mut file = std::fs::File::create(&tmp)?;
        match format {
            SinkFormat::Csv => writeln!(file, "{CSV_HEADER}")?,
            SinkFormat::Json => writeln!(file, "[")?,
        }
        Ok(SinkWriter {
            format,
            path: final_path,
            tmp,
            file,
            rows: 0,
        })
    }

    fn append(&mut self, rows: &[TrialRow]) -> std::io::Result<()> {
        for row in rows {
            match self.format {
                SinkFormat::Csv => writeln!(self.file, "{}", row.csv_line())?,
                SinkFormat::Json => {
                    if self.rows > 0 {
                        writeln!(self.file, ",")?;
                    }
                    write!(self.file, "  {}", row.json_object())?;
                }
            }
            self.rows += 1;
        }
        self.file.flush()
    }

    fn finish(mut self) -> std::io::Result<()> {
        if let SinkFormat::Json = self.format {
            if self.rows > 0 {
                writeln!(self.file)?;
            }
            writeln!(self.file, "]")?;
        }
        self.file.flush()?;
        std::fs::rename(&self.tmp, &self.path)
    }
}

/// Parses, dispatches and summarises one `.scn` file — a plain scenario
/// or a `sweep` grid — and returns its per-trial sink rows. In quick
/// mode every cell's replica count is capped at 4 (a CI smoke run, not
/// a measurement).
fn run_scenario_file(path: &str, quick: bool) -> Result<Vec<TrialRow>, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let mut sweep = SweepSpec::parse(&text)?;
    if quick {
        sweep.base.replicas = sweep.base.replicas.min(4);
        for axis in &mut sweep.axes {
            if let SweepAxis::Replicas(values) = axis {
                for v in values {
                    *v = (*v).min(4);
                }
            }
        }
    }
    let name = sweep.base.name.clone().unwrap_or_else(|| path.to_string());
    if sweep.axes.is_empty() {
        return run_single_scenario(&name, &sweep);
    }
    // od-lint: allow(D2) — sweep timing printed as progress metadata, not a result column
    let start = std::time::Instant::now();
    let report = run_sweep(&sweep)?;
    println!(
        "\n=== sweep {name} — {} cell(s), {} distinct graph(s), {} ===",
        report.cells.len(),
        report.distinct_graphs,
        if report.crn {
            "CRN-paired seeds"
        } else {
            "independent seeds"
        },
    );
    let mut t = Table::new(
        format!("sweep {name} — per-cell summary"),
        &[
            "cell",
            "label",
            "engine",
            "trials",
            "converged",
            "steps_mean",
            "steps_std",
            "F_mean",
        ],
    );
    for cell in &report.cells {
        let steps = cell.report.steps_summary();
        t.push_row(vec![
            cell.cell.index.to_string(),
            cell.cell.label.clone(),
            cell.report.engine.to_string(),
            cell.report.trials.len().to_string(),
            cell.report.converged_count().to_string(),
            fmt_float(steps.mean),
            fmt_float(steps.std),
            cell.report
                .estimate_summary()
                .map_or_else(|| "-".into(), |e| fmt_float(e.mean)),
        ]);
    }
    println!("{}", t.to_plain_text());
    print_contrasts(&name, &report);
    println!("[finished in {:.1}s]", start.elapsed().as_secs_f64());
    Ok(sweep_rows(&name, &report))
}

/// The paired-contrast table of a CRN sweep (skipped for independent
/// seeding or single-cell sweeps, where pairing is undefined).
fn print_contrasts(name: &str, report: &SweepReport) {
    let contrasts = report.contrasts();
    if contrasts.is_empty() {
        return;
    }
    let mut t = Table::new(
        format!("sweep {name} — paired contrasts vs cell 0 (steps, CRN)"),
        &[
            "cell",
            "label",
            "mean_diff",
            "std_err",
            "ci95_lo",
            "ci95_hi",
            "resolved",
        ],
    );
    for c in &contrasts {
        let Some(steps) = &c.steps else {
            t.push_row(vec![
                c.cell.to_string(),
                c.label.clone(),
                "-".into(),
                "-".into(),
                "-".into(),
                "-".into(),
                "unpaired (replica counts differ)".into(),
            ]);
            continue;
        };
        t.push_row(vec![
            c.cell.to_string(),
            c.label.clone(),
            fmt_float(steps.mean_diff),
            fmt_float(steps.std_err),
            fmt_float(steps.ci95.0),
            fmt_float(steps.ci95.1),
            steps.resolved().to_string(),
        ]);
    }
    println!("{}", t.to_plain_text());
}

/// The original single-scenario path: detailed metric table for one
/// cell.
fn run_single_scenario(
    name: &str,
    sweep: &SweepSpec,
) -> Result<Vec<TrialRow>, Box<dyn std::error::Error>> {
    let spec = &sweep.base;
    let sim = Simulation::from_spec(spec)?;
    println!(
        "\n=== scenario {name} — engine: {} (n = {}, m = {}, {} trial(s)) ===",
        sim.engine(),
        sim.graph().n(),
        sim.graph().m(),
        spec.replicas,
    );
    // od-lint: allow(D2) — scenario timing printed as progress metadata, not a result column
    let start = std::time::Instant::now();
    let report = sim.run()?;
    let steps = report.steps_summary();
    let mut t = Table::new(
        format!("scenario {name} — per-trial summary"),
        &["metric", "value"],
    );
    t.push_row(vec!["engine".into(), report.engine.to_string()]);
    t.push_row(vec!["trials".into(), report.trials.len().to_string()]);
    t.push_row(vec![
        "converged".into(),
        report.converged_count().to_string(),
    ]);
    t.push_row(vec!["steps_mean".into(), fmt_float(steps.mean)]);
    t.push_row(vec!["steps_median".into(), fmt_float(steps.median)]);
    t.push_row(vec!["steps_std".into(), fmt_float(steps.std)]);
    t.push_row(vec!["steps_min".into(), fmt_float(steps.min)]);
    t.push_row(vec!["steps_max".into(), fmt_float(steps.max)]);
    if let Some(estimate) = report.estimate_summary() {
        t.push_row(vec!["F_mean".into(), fmt_float(estimate.mean)]);
        t.push_row(vec!["F_std".into(), fmt_float(estimate.std)]);
    }
    if report.max_mutations() > 0 {
        t.push_row(vec![
            "topology_mutations".into(),
            report.max_mutations().to_string(),
        ]);
    }
    if let Some(trace) = &report.trace {
        t.push_row(vec!["trace_samples".into(), trace.len().to_string()]);
        t.push_row(vec![
            "trace_final_phi".into(),
            fmt_float(trace.last().map_or(f64::NAN, |&(_, phi)| phi)),
        ]);
    }
    println!("{}", t.to_plain_text());
    println!("[finished in {:.1}s]", start.elapsed().as_secs_f64());
    Ok(cell_rows(name, 0, "", spec.seed, &report.trials))
}

fn print_usage() {
    println!(
        "usage: run-experiments [--quick] --all | <ID>... | \
         scenario <file.scn>... [--csv <path>] [--json <path>] | \
         serve [--addr <host:port>] [--workers <n>] [--checkpoint-dir <dir>] | \
         submit <file.scn>... [--addr <host:port>] | --list"
    );
    println!("experiments:");
    for e in registry() {
        println!("  {:10} {}", e.id, e.description);
    }
}
