//! Experiment runner binary.
//!
//! ```text
//! run-experiments --all [--quick]
//! run-experiments P58 L57 FIG1 [--quick]
//! run-experiments scenario <file.scn> [--quick]
//! run-experiments --list
//! ```
//!
//! Tables print to stdout; CSV copies land in `results/<ID>_<i>.csv`.
//! The `scenario` subcommand parses a declarative `.scn` scenario file
//! (see `examples/scenarios/` and the README "Scenarios" section), lets
//! the unified Scenario API (`od-sim`) dispatch it to the optimal
//! engine, and prints the per-trial summary. `--quick` caps the trial
//! count for CI smoke runs.

use od_experiments::{find, registry, ExperimentContext};
use od_sim::{ScenarioSpec, Simulation};
use od_stats::{fmt_float, Table};
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.is_empty() || args.iter().any(|a| a == "--help" || a == "-h") {
        print_usage();
        return;
    }
    if args.iter().any(|a| a == "--list") {
        for e in registry() {
            println!("{:10} {}", e.id, e.description);
        }
        return;
    }
    let quick = args.iter().any(|a| a == "--quick");
    // The subcommand is the first non-flag argument, so `--quick` may
    // come before or after it.
    let positional: Vec<&String> = args.iter().filter(|a| !a.starts_with("--")).collect();
    if positional.first().map(|a| a.as_str()) == Some("scenario") {
        let files = &positional[1..];
        if files.is_empty() {
            eprintln!("usage: run_experiments scenario <file.scn> [--quick]");
            std::process::exit(2);
        }
        for file in files {
            if let Err(e) = run_scenario_file(file, quick) {
                eprintln!("{file}: {e}");
                std::process::exit(1);
            }
        }
        return;
    }
    let ctx = if quick {
        ExperimentContext::quick()
    } else {
        ExperimentContext::full()
    };
    let run_all = args.iter().any(|a| a == "--all");
    let ids: Vec<String> = if run_all {
        registry().iter().map(|e| e.id.to_string()).collect()
    } else {
        args.iter()
            .filter(|a| !a.starts_with("--"))
            .cloned()
            .collect()
    };
    if ids.is_empty() {
        print_usage();
        std::process::exit(2);
    }

    std::fs::create_dir_all("results").expect("create results directory");
    let mut failed = false;
    for id in &ids {
        let Some(experiment) = find(id) else {
            eprintln!("unknown experiment id: {id} (try --list)");
            failed = true;
            continue;
        };
        println!("\n=== {} — {} ===", experiment.id, experiment.description);
        let start = std::time::Instant::now();
        let tables = (experiment.run)(&ctx);
        for (i, table) in tables.iter().enumerate() {
            println!("{}", table.to_plain_text());
            let path = format!("results/{}_{}.csv", experiment.id, i);
            let mut file = std::fs::File::create(&path).expect("create csv");
            file.write_all(table.to_csv().as_bytes())
                .expect("write csv");
            let md_path = format!("results/{}_{}.md", experiment.id, i);
            let mut md = std::fs::File::create(&md_path).expect("create md");
            md.write_all(format!("### {}\n\n", table.title()).as_bytes())
                .expect("write md");
            md.write_all(table.to_markdown().as_bytes())
                .expect("write md");
        }
        println!(
            "[{} finished in {:.1}s]",
            experiment.id,
            start.elapsed().as_secs_f64()
        );
    }
    if failed {
        std::process::exit(2);
    }
}

/// Parses, dispatches and summarises one `.scn` scenario file. In quick
/// mode the replica count is capped at 4 (a CI smoke run, not a
/// measurement).
fn run_scenario_file(path: &str, quick: bool) -> Result<(), Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path)?;
    let mut spec = ScenarioSpec::parse(&text)?;
    if quick {
        spec.replicas = spec.replicas.min(4);
    }
    let name = spec.name.clone().unwrap_or_else(|| path.to_string());
    let sim = Simulation::from_spec(&spec)?;
    println!(
        "\n=== scenario {name} — engine: {} (n = {}, m = {}, {} trial(s)) ===",
        sim.engine(),
        sim.graph().n(),
        sim.graph().m(),
        spec.replicas,
    );
    let start = std::time::Instant::now();
    let report = sim.run()?;
    let steps = report.steps_summary();
    let mut t = Table::new(
        format!("scenario {name} — per-trial summary"),
        &["metric", "value"],
    );
    t.push_row(vec!["engine".into(), report.engine.to_string()]);
    t.push_row(vec!["trials".into(), report.trials.len().to_string()]);
    t.push_row(vec![
        "converged".into(),
        report.converged_count().to_string(),
    ]);
    t.push_row(vec!["steps_mean".into(), fmt_float(steps.mean)]);
    t.push_row(vec!["steps_median".into(), fmt_float(steps.median)]);
    t.push_row(vec!["steps_std".into(), fmt_float(steps.std)]);
    t.push_row(vec!["steps_min".into(), fmt_float(steps.min)]);
    t.push_row(vec!["steps_max".into(), fmt_float(steps.max)]);
    if let Some(estimate) = report.estimate_summary() {
        t.push_row(vec!["F_mean".into(), fmt_float(estimate.mean)]);
        t.push_row(vec!["F_std".into(), fmt_float(estimate.std)]);
    }
    if report.max_mutations() > 0 {
        t.push_row(vec![
            "topology_mutations".into(),
            report.max_mutations().to_string(),
        ]);
    }
    if let Some(trace) = &report.trace {
        t.push_row(vec!["trace_samples".into(), trace.len().to_string()]);
        t.push_row(vec![
            "trace_final_phi".into(),
            fmt_float(trace.last().map_or(f64::NAN, |&(_, phi)| phi)),
        ]);
    }
    println!("{}", t.to_plain_text());
    println!("[finished in {:.1}s]", start.elapsed().as_secs_f64());
    Ok(())
}

fn print_usage() {
    println!("usage: run-experiments [--quick] --all | <ID>... | scenario <file.scn>... | --list");
    println!("experiments:");
    for e in registry() {
        println!("  {:10} {}", e.id, e.description);
    }
}
