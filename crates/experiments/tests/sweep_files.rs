//! The committed sweep `.scn` files ARE the experiments: each file in
//! `examples/scenarios/` is the exact text form of the programmatic
//! full-mode sweep the experiment registry runs, so
//! `run_experiments scenario examples/scenarios/t22_conv_sweep.scn`
//! reproduces `run_experiments T22-CONV` cell for cell (same graphs,
//! same per-cell seed streams, same budgets). These gates pin that
//! equality; regenerate the files after an intentional change with
//! `OD_REGEN_SCN=1 cargo test -p od-experiments --test sweep_files`.

use od_experiments::experiments::{convergence, dynamic};
use od_experiments::ExperimentContext;
use od_sim::SweepSpec;
use std::path::PathBuf;

fn scenario_path(file: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../examples/scenarios")
        .join(file)
}

fn check(file: &str, sweep: &SweepSpec) {
    let path = scenario_path(file);
    let text = sweep.to_string();
    if std::env::var_os("OD_REGEN_SCN").is_some() {
        std::fs::write(&path, &text).expect("write regenerated scenario file");
        return;
    }
    let committed =
        std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
    assert_eq!(
        committed, text,
        "{file} drifted from the programmatic sweep — regenerate with OD_REGEN_SCN=1"
    );
    // And the round trip back: parsing the committed file yields the
    // exact programmatic spec.
    let parsed = SweepSpec::parse(&committed).expect("committed sweep file parses");
    assert_eq!(&parsed, sweep);
}

#[test]
fn t22_conv_sweep_file_matches_registry_experiment() {
    let sweep = convergence::node_convergence_sweep(&ExperimentContext::full());
    assert_eq!(
        sweep.cell_count(),
        12,
        "4 sizes x {{cycle, complete}} + 2 tori + 2 hypercubes"
    );
    assert!(!sweep.is_crn(), "legacy per-cell seeds are zipped in");
    check("t22_conv_sweep.scn", &sweep);
}

#[test]
fn dyn_churn_sweep_file_matches_registry_experiment() {
    let sweep = dynamic::churn_convergence_sweep(&ExperimentContext::full());
    assert_eq!(sweep.cell_count(), 4, "one cell per churn rate");
    assert!(!sweep.is_crn(), "legacy per-cell seeds are zipped in");
    check("dyn_churn_sweep.scn", &sweep);
}
