//! End-to-end CLI tests for the `run_experiments` sink pipeline and the
//! `serve`/`submit` subcommands: RFC-4180 quoting of comma-bearing
//! scenario paths, up-front sink validation, partial-failure row
//! retention, and a daemon round trip answered from cache.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::path::PathBuf;
use std::process::{Command, Output, Stdio};

const BIN: &str = env!("CARGO_BIN_EXE_run_experiments");

/// A fast-converging single-cell scenario WITHOUT a `scenario <name>`
/// line, so the sink `scenario` field falls back to the file path.
const UNNAMED_SCN: &str = "model node alpha=0.5 k=1 lazy=false\n\
                           graph cycle n=8\n\
                           init pm_one\n\
                           replicas 2\n\
                           seed 1\n\
                           stop converge eps=0.000001 rule=exact potential=pi budget=1000000\n";

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("od-cli-test-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn run(args: &[&str]) -> Output {
    Command::new(BIN).args(args).output().expect("run binary")
}

/// Splits one CSV line honouring RFC-4180 quoting.
fn csv_fields(line: &str) -> Vec<String> {
    let mut fields = Vec::new();
    let mut field = String::new();
    let mut quoted = false;
    let mut chars = line.chars().peekable();
    while let Some(c) = chars.next() {
        match c {
            '"' if quoted && chars.peek() == Some(&'"') => {
                field.push('"');
                chars.next();
            }
            '"' => quoted = !quoted,
            ',' if !quoted => fields.push(std::mem::take(&mut field)),
            c => field.push(c),
        }
    }
    fields.push(field);
    fields
}

#[test]
fn comma_bearing_scenario_path_is_quoted_in_csv_and_json() {
    let dir = temp_dir("comma");
    // The regression: a path with commas used to be written unquoted,
    // shifting every later CSV column.
    let scn = dir.join("sweep, with commas.scn");
    std::fs::write(&scn, UNNAMED_SCN).unwrap();
    let csv_path = dir.join("out.csv");
    let json_path = dir.join("out.json");
    let out = run(&[
        "scenario",
        scn.to_str().unwrap(),
        "--csv",
        csv_path.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert!(
        out.status.success(),
        "{}",
        String::from_utf8_lossy(&out.stderr)
    );

    let csv = std::fs::read_to_string(&csv_path).unwrap();
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3, "header + 2 trials:\n{csv}");
    for line in &lines[1..] {
        let fields = csv_fields(line);
        assert_eq!(fields.len(), 11, "quoting must preserve the column count");
        assert_eq!(fields[0], scn.to_str().unwrap());
    }
    assert!(
        lines[1].starts_with('"'),
        "comma-bearing scenario field must be quoted: {}",
        lines[1]
    );

    let json = std::fs::read_to_string(&json_path).unwrap();
    assert!(json.trim_start().starts_with('['));
    assert!(json.trim_end().ends_with(']'));
    assert_eq!(json.matches("\"scenario\"").count(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn parse_error_after_a_good_file_keeps_its_rows() {
    let dir = temp_dir("partial");
    let good = dir.join("good.scn");
    std::fs::write(&good, format!("scenario good\n{UNNAMED_SCN}")).unwrap();
    let bad = dir.join("bad.scn");
    std::fs::write(&bad, "model this-is-not-a-model\n").unwrap();
    let csv_path = dir.join("out.csv");
    let json_path = dir.join("out.json");
    let out = run(&[
        "scenario",
        good.to_str().unwrap(),
        bad.to_str().unwrap(),
        "--csv",
        csv_path.to_str().unwrap(),
        "--json",
        json_path.to_str().unwrap(),
    ]);
    assert_eq!(
        out.status.code(),
        Some(1),
        "a broken file still fails the run"
    );

    // The regression: sinks used to be written only after ALL files, so
    // the bad file threw away the good file's rows. Now they're flushed
    // per file and finalised even on failure.
    let csv = std::fs::read_to_string(&csv_path).expect("csv sink exists despite the bad file");
    let lines: Vec<&str> = csv.lines().collect();
    assert_eq!(lines.len(), 3, "header + good file's 2 trials:\n{csv}");
    assert!(lines[1].starts_with("good,0,"), "{}", lines[1]);
    let json = std::fs::read_to_string(&json_path).unwrap();
    assert_eq!(json.matches("\"scenario\":\"good\"").count(), 2);
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn unwritable_sink_path_fails_before_any_scenario_runs() {
    let dir = temp_dir("upfront");
    let scn = dir.join("slow.scn");
    std::fs::write(&scn, UNNAMED_SCN).unwrap();
    // A file where the sink's parent directory should be makes the path
    // unusable.
    let blocker = dir.join("blocker");
    std::fs::write(&blocker, "").unwrap();
    let csv_path = blocker.join("out.csv");
    let out = run(&[
        "scenario",
        scn.to_str().unwrap(),
        "--csv",
        csv_path.to_str().unwrap(),
    ]);
    assert_eq!(out.status.code(), Some(2), "sink validated up front");
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(stderr.contains("sink"), "{stderr}");
    // Nothing ran: no summary table reached stdout.
    assert!(
        out.stdout.is_empty(),
        "{}",
        String::from_utf8_lossy(&out.stdout)
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn serve_and_submit_round_trip_is_byte_identical() {
    let dir = temp_dir("serve");
    let scn = dir.join("sweep.scn");
    std::fs::write(
        &scn,
        format!("scenario cli-serve\n{UNNAMED_SCN}sweep k = 1,2\n"),
    )
    .unwrap();

    let mut daemon = Command::new(BIN)
        .args(["serve", "--addr", "127.0.0.1:0", "--workers", "2"])
        .stdout(Stdio::piped())
        .spawn()
        .expect("spawn daemon");
    let mut daemon_out = BufReader::new(daemon.stdout.take().unwrap());
    let mut banner = String::new();
    daemon_out.read_line(&mut banner).unwrap();
    let addr = banner
        .trim()
        .strip_prefix("od-serve listening on ")
        .unwrap_or_else(|| panic!("unexpected banner: {banner}"))
        .to_string();

    let first = run(&["submit", scn.to_str().unwrap(), "--addr", &addr]);
    assert!(
        first.status.success(),
        "{}",
        String::from_utf8_lossy(&first.stderr)
    );
    let body = String::from_utf8_lossy(&first.stdout);
    assert!(body.starts_with("OK cells=2 "), "{body}");
    assert!(body.contains("\nROW "), "{body}");
    assert!(body.contains("\nCELL 0 "), "{body}");
    assert!(body.contains("\nCONTRAST 1 "), "{body}");
    assert!(body.ends_with("DONE\n"), "{body}");

    // Resubmission is answered from the memo cache, byte-identically.
    let second = run(&["submit", scn.to_str().unwrap(), "--addr", &addr]);
    assert_eq!(second.stdout, first.stdout);

    // A broken submission is a clean ERR and exit 1.
    let bad = dir.join("bad.scn");
    std::fs::write(&bad, "model nope\n").unwrap();
    let err = run(&["submit", bad.to_str().unwrap(), "--addr", &addr]);
    assert_eq!(err.status.code(), Some(1));
    assert!(String::from_utf8_lossy(&err.stdout).starts_with("ERR "));

    // SHUTDOWN stops the daemon cleanly.
    let mut stream = TcpStream::connect(&addr).unwrap();
    writeln!(stream, "SHUTDOWN").unwrap();
    let mut reply = String::new();
    BufReader::new(&stream).read_line(&mut reply).unwrap();
    assert_eq!(reply, "BYE\n");
    let status = daemon.wait().expect("daemon exits after SHUTDOWN");
    assert!(status.success());
    let _ = std::fs::remove_dir_all(&dir);
}
