//! Statistics substrate for the reproduction of *Distributed Averaging in
//! Opinion Dynamics* (PODC 2023).
//!
//! The paper's headline result is a **variance** statement
//! (`Var(F) = Θ(‖ξ(0)‖²/n²)`, Theorem 2.2(2) / Prop. 5.8), so the
//! experiments are Monte-Carlo variance estimations that need numerically
//! stable online moments ([`welford`]), uncertainty quantification
//! ([`summary`]), scaling-law fits for the convergence-time experiments
//! ([`regression`]), reproducible per-trial seeding ([`seeds`]),
//! paired/independent mean contrasts for common-random-number sweep
//! deltas ([`ttest`]) and readable result tables ([`table`]).

#![forbid(unsafe_code)]
#![warn(missing_docs)]
#![cfg_attr(not(test), deny(clippy::unwrap_used, clippy::expect_used))]

pub mod regression;
pub mod seeds;
pub mod summary;
pub mod table;
pub mod ttest;
pub mod welford;

pub use seeds::SeedSequence;
pub use summary::Summary;
pub use table::{fmt_float, Table};
pub use ttest::{paired_t_ci, t_critical_95, welch_t_ci, Contrast};
pub use welford::Welford;
