//! Result tables: aligned plain-text, CSV, and Markdown output.
//!
//! Every experiment in `od-experiments` emits one or more [`Table`]s; the
//! plain-text form goes to stdout, the Markdown form into `EXPERIMENTS.md`,
//! and the CSV form next to it for downstream plotting.

use std::fmt::Write as _;

/// A simple rectangular table of strings with a header row.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with the given title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Table title.
    pub fn title(&self) -> &str {
        &self.title
    }

    /// Number of data rows.
    pub fn row_count(&self) -> usize {
        self.rows.len()
    }

    /// Appends a row.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row width {} != header width {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Convenience: appends a row of displayable items.
    ///
    /// # Panics
    ///
    /// Panics if the row width differs from the header width.
    pub fn push_display_row(&mut self, row: &[&dyn std::fmt::Display]) {
        self.push_row(row.iter().map(|d| d.to_string()).collect());
    }

    /// Renders as aligned plain text.
    pub fn to_plain_text(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let _ = writeln!(out, "## {}", self.title);
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            cells
                .iter()
                .zip(widths)
                .map(|(c, w)| format!("{c:>w$}", w = w))
                .collect::<Vec<_>>()
                .join("  ")
        };
        let _ = writeln!(out, "{}", fmt_row(&self.header, &widths));
        let total: usize = widths.iter().sum::<usize>() + 2 * (widths.len().saturating_sub(1));
        let _ = writeln!(out, "{}", "-".repeat(total));
        for row in &self.rows {
            let _ = writeln!(out, "{}", fmt_row(row, &widths));
        }
        out
    }

    /// Renders as CSV (RFC-4180 quoting for cells containing commas or
    /// quotes).
    pub fn to_csv(&self) -> String {
        let quote = |cell: &str| -> String {
            if cell.contains(',') || cell.contains('"') || cell.contains('\n') {
                format!("\"{}\"", cell.replace('"', "\"\""))
            } else {
                cell.to_string()
            }
        };
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{}",
            self.header
                .iter()
                .map(|c| quote(c))
                .collect::<Vec<_>>()
                .join(",")
        );
        for row in &self.rows {
            let _ = writeln!(
                out,
                "{}",
                row.iter().map(|c| quote(c)).collect::<Vec<_>>().join(",")
            );
        }
        out
    }

    /// Renders as a GitHub-flavoured Markdown table.
    pub fn to_markdown(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(out, "| {} |", self.header.join(" | "));
        let _ = writeln!(
            out,
            "|{}|",
            self.header
                .iter()
                .map(|_| "---")
                .collect::<Vec<_>>()
                .join("|")
        );
        for row in &self.rows {
            let _ = writeln!(out, "| {} |", row.join(" | "));
        }
        out
    }
}

/// Formats a float with engineering-friendly precision: scientific notation
/// for very small/large magnitudes, fixed otherwise.
pub fn fmt_float(x: f64) -> String {
    // od-lint: allow(F1) — exact sentinel: formatting the literal zero
    if x == 0.0 {
        "0".to_string()
    } else if x.abs() >= 1e5 || x.abs() < 1e-3 {
        format!("{x:.3e}")
    } else {
        format!("{x:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("demo", &["graph", "n", "value"]);
        t.push_row(vec!["cycle".into(), "16".into(), "0.5".into()]);
        t.push_row(vec!["complete".into(), "8".into(), "1.25".into()]);
        t
    }

    #[test]
    fn plain_text_is_aligned_and_titled() {
        let text = sample_table().to_plain_text();
        assert!(text.contains("## demo"));
        assert!(text.contains("cycle"));
        let lines: Vec<&str> = text.lines().collect();
        // header + separator + 2 rows + title line
        assert_eq!(lines.len(), 5);
    }

    #[test]
    fn csv_round_trip_basics() {
        let csv = sample_table().to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines[0], "graph,n,value");
        assert_eq!(lines[1], "cycle,16,0.5");
    }

    #[test]
    fn csv_quotes_commas_and_quotes() {
        let mut t = Table::new("q", &["a"]);
        t.push_row(vec!["x,y".into()]);
        t.push_row(vec!["say \"hi\"".into()]);
        let csv = t.to_csv();
        assert!(csv.contains("\"x,y\""));
        assert!(csv.contains("\"say \"\"hi\"\"\""));
    }

    #[test]
    fn markdown_has_separator_row() {
        let md = sample_table().to_markdown();
        let lines: Vec<&str> = md.lines().collect();
        assert_eq!(lines[1], "|---|---|---|");
        assert!(lines[2].starts_with("| cycle"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new("bad", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }

    #[test]
    fn float_formatting() {
        assert_eq!(fmt_float(0.0), "0");
        assert_eq!(fmt_float(1.5), "1.5000");
        assert!(fmt_float(1e-9).contains('e'));
        assert!(fmt_float(1e9).contains('e'));
    }

    #[test]
    fn push_display_row_stringifies() {
        let mut t = Table::new("d", &["x", "y"]);
        t.push_display_row(&[&42, &"abc"]);
        assert_eq!(t.row_count(), 1);
        assert!(t.to_csv().contains("42,abc"));
    }
}
