//! Paired and independent two-sample contrasts.
//!
//! Sweep deltas under common random numbers (CRN) are *paired*
//! observations: trial `i` of cell A and trial `i` of cell B share the
//! seed `SeedSequence::new(master).seed(i)`, so the difference
//! `d_i = a_i − b_i` cancels the shared Monte-Carlo noise and its
//! variance is `Var(a) + Var(b) − 2·Cov(a, b)` — strictly smaller than
//! the independent-seeding variance whenever the cells are positively
//! correlated. [`paired_t_ci`] quantifies the paired contrast;
//! [`welch_t_ci`] is the independent-seeding reference it is compared
//! against (the variance-reduction regression in
//! `crates/sim/tests/sweep_prop.rs` pins paired strictly tighter on a
//! reference sweep).

use crate::welford::Welford;

/// A two-sample mean contrast with a t-based confidence interval.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Contrast {
    /// Number of pairs (paired) or per-sample observations (independent).
    pub n: usize,
    /// Estimated mean difference `mean(a) − mean(b)`.
    pub mean_diff: f64,
    /// Standard error of the mean difference.
    pub std_err: f64,
    /// Degrees of freedom of the t statistic (Welch-adjusted for the
    /// independent contrast).
    pub df: f64,
    /// Two-sided 95% confidence interval `(lo, hi)` for the mean
    /// difference.
    pub ci95: (f64, f64),
}

impl Contrast {
    /// Width of the 95% interval (`hi − lo`).
    pub fn ci_width(&self) -> f64 {
        self.ci95.1 - self.ci95.0
    }

    /// Whether the interval excludes zero (the difference is resolved at
    /// the 95% level).
    pub fn resolved(&self) -> bool {
        self.ci95.0 > 0.0 || self.ci95.1 < 0.0
    }
}

/// Paired-t contrast of equal-length samples: the CRN sweep delta.
/// `d_i = a[i] − b[i]` per pair, `CI = d̄ ± t₀.₉₅(n−1)·s_d/√n`.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two pairs, or
/// contain NaN.
// Invariant-backed: the `expect` messages state why each cannot fire.
#[allow(clippy::expect_used)]
pub fn paired_t_ci(a: &[f64], b: &[f64]) -> Contrast {
    assert_eq!(a.len(), b.len(), "paired contrast needs equal lengths");
    assert!(a.len() >= 2, "paired contrast needs at least two pairs");
    let diffs: Welford = a.iter().zip(b).map(|(x, y)| x - y).collect();
    let n = a.len();
    let mean = diffs.mean().expect("non-empty");
    let sd = diffs.sample_std().expect("n >= 2");
    assert!(mean.is_finite() && sd.is_finite(), "NaN in paired contrast");
    let se = sd / (n as f64).sqrt();
    let df = (n - 1) as f64;
    let half = t_critical_95(df) * se;
    Contrast {
        n,
        mean_diff: mean,
        std_err: se,
        df,
        ci95: (mean - half, mean + half),
    }
}

/// Welch's t contrast of two independent samples — the
/// independent-seeding reference a CRN paired contrast is measured
/// against. Uses the Welch–Satterthwaite degrees of freedom.
///
/// # Panics
///
/// Panics if either sample has fewer than two observations, both sample
/// variances are zero, or the data contain NaN.
// Invariant-backed: the `expect` messages state why each cannot fire.
#[allow(clippy::expect_used)]
pub fn welch_t_ci(a: &[f64], b: &[f64]) -> Contrast {
    assert!(
        a.len() >= 2 && b.len() >= 2,
        "welch contrast needs at least two observations per sample"
    );
    let wa: Welford = a.iter().copied().collect();
    let wb: Welford = b.iter().copied().collect();
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let mean = wa.mean().expect("n >= 2") - wb.mean().expect("n >= 2");
    let (va, vb) = (
        wa.sample_variance().expect("n >= 2") / na,
        wb.sample_variance().expect("n >= 2") / nb,
    );
    assert!(mean.is_finite() && (va + vb).is_finite(), "NaN in contrast");
    assert!(va + vb > 0.0, "welch contrast of two constant samples");
    let se = (va + vb).sqrt();
    let df = (va + vb) * (va + vb) / (va * va / (na - 1.0) + vb * vb / (nb - 1.0));
    let half = t_critical_95(df) * se;
    Contrast {
        n: a.len().min(b.len()),
        mean_diff: mean,
        std_err: se,
        df,
        ci95: (mean - half, mean + half),
    }
}

/// Two-sided 95% critical value of Student's t with `df` degrees of
/// freedom: exact table for df ≤ 30, linear interpolation on 1/df up to
/// the normal limit beyond (error < 0.2% — far below the Monte-Carlo
/// noise these intervals quantify).
///
/// # Panics
///
/// Panics if `df < 1`.
pub fn t_critical_95(df: f64) -> f64 {
    assert!(df >= 1.0, "t critical value needs df >= 1");
    const TABLE: [f64; 30] = [
        12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228, 2.201, 2.179, 2.160,
        2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086, 2.080, 2.074, 2.069, 2.064, 2.060, 2.056,
        2.052, 2.048, 2.045, 2.042,
    ];
    if df <= 30.0 {
        // Interpolate between integer table entries for fractional
        // (Welch) degrees of freedom.
        let lo = df.floor() as usize;
        let hi = df.ceil() as usize;
        let (tlo, thi) = (TABLE[lo - 1], TABLE[hi - 1]);
        tlo + (thi - tlo) * (df - lo as f64)
    } else {
        // t ≈ z + c/df is accurate in this regime: anchor at the df = 30
        // table entry and decay to the normal quantile 1.96.
        let z = 1.96;
        let c = (TABLE[29] - z) * 30.0;
        z + c / df
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn t_table_known_values() {
        assert!((t_critical_95(1.0) - 12.706).abs() < 1e-9);
        assert!((t_critical_95(10.0) - 2.228).abs() < 1e-9);
        assert!((t_critical_95(30.0) - 2.042).abs() < 1e-9);
        // Fractional df interpolates between neighbours.
        let t = t_critical_95(4.5);
        assert!(t < t_critical_95(4.0) && t > t_critical_95(5.0));
        // Large df approaches the normal quantile from above.
        assert!(t_critical_95(120.0) > 1.96);
        assert!(t_critical_95(120.0) < 1.99);
        assert!(t_critical_95(1e9) - 1.96 < 1e-6);
    }

    #[test]
    fn paired_known_batch() {
        let a = [10.0, 12.0, 11.0, 13.0];
        let b = [9.0, 11.0, 10.0, 12.0];
        let c = paired_t_ci(&a, &b);
        // Differences are exactly 1: zero spread, degenerate interval.
        assert_eq!(c.mean_diff, 1.0);
        assert_eq!(c.std_err, 0.0);
        assert_eq!(c.ci95, (1.0, 1.0));
        assert!(c.resolved());
    }

    #[test]
    fn paired_beats_welch_on_correlated_samples() {
        // a and b share per-index noise (the CRN situation): pairing
        // cancels it, independent analysis cannot.
        let noise: Vec<f64> = (0..16).map(|i| ((i * 37) % 11) as f64).collect();
        let a: Vec<f64> = noise.iter().map(|x| 5.0 + x).collect();
        let b: Vec<f64> = noise.iter().map(|x| 4.0 + x + 0.01 * x).collect();
        let paired = paired_t_ci(&a, &b);
        let indep = welch_t_ci(&a, &b);
        assert!(paired.ci_width() < indep.ci_width());
        assert!(paired.resolved(), "pairing resolves the shift");
        assert!(!indep.resolved(), "independent analysis drowns in noise");
    }

    #[test]
    fn welch_matches_equal_variance_case() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [2.0, 3.0, 4.0, 5.0, 6.0];
        let c = welch_t_ci(&a, &b);
        assert!((c.mean_diff + 1.0).abs() < 1e-12);
        // Equal variances: Welch df = na + nb − 2 = 8.
        assert!((c.df - 8.0).abs() < 1e-9);
        assert!(c.ci95.0 < -1.0 && c.ci95.1 > -1.0);
    }

    #[test]
    #[should_panic(expected = "equal lengths")]
    fn paired_length_mismatch_panics() {
        paired_t_ci(&[1.0, 2.0], &[1.0]);
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn paired_single_pair_panics() {
        paired_t_ci(&[1.0], &[2.0]);
    }
}
