//! Batch summaries: quantiles, confidence intervals, min/max.

use crate::welford::Welford;

/// Descriptive summary of a batch of observations.
#[derive(Debug, Clone, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: usize,
    /// Sample mean.
    pub mean: f64,
    /// Unbiased sample standard deviation (0 for a single observation).
    pub std: f64,
    /// Minimum.
    pub min: f64,
    /// Median (type-7 linear interpolation).
    pub median: f64,
    /// Maximum.
    pub max: f64,
}

impl Summary {
    /// Summarizes a non-empty batch.
    ///
    /// # Panics
    ///
    /// Panics on an empty slice or on NaN values.
    // Invariant-backed: the `expect` messages state why each cannot fire.
    #[allow(clippy::expect_used)]
    pub fn of(data: &[f64]) -> Summary {
        assert!(!data.is_empty(), "summary of empty batch");
        assert!(
            data.iter().all(|x| !x.is_nan()),
            "summary requires NaN-free data"
        );
        let w: Welford = data.iter().copied().collect();
        let mut sorted = data.to_vec();
        sorted.sort_by(f64::total_cmp);
        Summary {
            count: data.len(),
            mean: w.mean().expect("asserted non-empty"),
            std: w.sample_std().unwrap_or(0.0),
            min: sorted[0],
            median: quantile_sorted(&sorted, 0.5),
            max: sorted[sorted.len() - 1],
        }
    }

    /// Normal-approximation confidence interval for the mean at the given
    /// z-score (e.g. `1.96` for 95%). Returns `(lo, hi)`.
    pub fn mean_ci(&self, z: f64) -> (f64, f64) {
        let half = z * self.std / (self.count as f64).sqrt();
        (self.mean - half, self.mean + half)
    }
}

/// Quantile of *sorted* data using linear interpolation (type 7, the
/// numpy/R default). `q` must lie in `[0, 1]`.
///
/// # Panics
///
/// Panics on empty input or `q` outside `[0, 1]`.
pub fn quantile_sorted(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Quantile of unsorted data (sorts a copy).
pub fn quantile(data: &[f64], q: f64) -> f64 {
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    quantile_sorted(&sorted, q)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_batch() {
        let s = Summary::of(&[4.0, 1.0, 3.0, 2.0]);
        assert_eq!(s.count, 4);
        assert!((s.mean - 2.5).abs() < 1e-14);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 4.0);
        assert!((s.median - 2.5).abs() < 1e-14);
        assert!((s.std - (5.0f64 / 3.0).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn single_point_summary() {
        let s = Summary::of(&[7.0]);
        assert_eq!(s.std, 0.0);
        assert_eq!(s.median, 7.0);
        let (lo, hi) = s.mean_ci(1.96);
        assert_eq!((lo, hi), (7.0, 7.0));
    }

    #[test]
    fn ci_shrinks_with_n() {
        let narrow = Summary::of(&vec![1.0; 100]);
        let (lo, hi) = narrow.mean_ci(1.96);
        assert_eq!(lo, 1.0);
        assert_eq!(hi, 1.0);

        let wide = Summary::of(&[0.0, 2.0]);
        let (lo, hi) = wide.mean_ci(1.96);
        assert!(lo < 1.0 && hi > 1.0);
    }

    #[test]
    fn quantile_interpolation() {
        let data = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(quantile(&data, 0.0), 1.0);
        assert_eq!(quantile(&data, 1.0), 4.0);
        assert!((quantile(&data, 0.25) - 1.75).abs() < 1e-14);
        assert!((quantile(&data, 0.5) - 2.5).abs() < 1e-14);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_summary_panics() {
        Summary::of(&[]);
    }

    #[test]
    #[should_panic(expected = "NaN-free")]
    fn nan_summary_panics() {
        Summary::of(&[1.0, f64::NAN]);
    }
}
