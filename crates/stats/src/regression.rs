//! Least-squares fits.
//!
//! The convergence-time experiments check *scaling*: Theorem 2.2 predicts
//! `T_ε = O(n log(n‖ξ‖²/ε) / (1−λ₂))`, so a log-log fit of measured time
//! against the predicted quantity should produce slope ≈ 1. [`linear_fit`]
//! and [`log_log_fit`] provide slope, intercept and `R²`.

/// Result of a simple linear regression `y ≈ slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LinearFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination in `[0, 1]` (1 when `y` is constant).
    pub r_squared: f64,
}

/// Ordinary least squares on `(x, y)` pairs.
///
/// # Panics
///
/// Panics if the slices differ in length, have fewer than two points, or if
/// all `x` are identical (the slope is then undefined).
pub fn linear_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert_eq!(x.len(), y.len(), "linear_fit: length mismatch");
    assert!(x.len() >= 2, "linear_fit needs at least two points");
    let n = x.len() as f64;
    let mean_x = x.iter().sum::<f64>() / n;
    let mean_y = y.iter().sum::<f64>() / n;
    let mut sxx = 0.0;
    let mut sxy = 0.0;
    let mut syy = 0.0;
    for (&xi, &yi) in x.iter().zip(y) {
        let dx = xi - mean_x;
        let dy = yi - mean_y;
        sxx += dx * dx;
        sxy += dx * dy;
        syy += dy * dy;
    }
    assert!(sxx > 0.0, "linear_fit: all x values identical");
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    // od-lint: allow(F1) — exact sentinel: syy == 0.0 means every y is identical, a perfect fit by definition
    let r_squared = if syy == 0.0 {
        1.0
    } else {
        (sxy * sxy) / (sxx * syy)
    };
    LinearFit {
        slope,
        intercept,
        r_squared,
    }
}

/// Log-log fit: regresses `ln y` on `ln x`, so `slope` is the estimated
/// power-law exponent of `y ∝ x^slope`.
///
/// # Panics
///
/// Panics if any value is non-positive, plus the [`linear_fit`] conditions.
pub fn log_log_fit(x: &[f64], y: &[f64]) -> LinearFit {
    assert!(
        x.iter().chain(y).all(|&v| v > 0.0),
        "log_log_fit requires strictly positive data"
    );
    let lx: Vec<f64> = x.iter().map(|v| v.ln()).collect();
    let ly: Vec<f64> = y.iter().map(|v| v.ln()).collect();
    linear_fit(&lx, &ly)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let x = [1.0, 2.0, 3.0, 4.0];
        let y: Vec<f64> = x.iter().map(|v| 2.5 * v - 1.0).collect();
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 2.5).abs() < 1e-12);
        assert!((fit.intercept + 1.0).abs() < 1e-12);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let x = [1.0, 2.0, 3.0, 4.0, 5.0];
        let y = [1.1, 1.9, 3.2, 3.8, 5.1];
        let fit = linear_fit(&x, &y);
        assert!((fit.slope - 1.0).abs() < 0.1);
        assert!(fit.r_squared > 0.98);
    }

    #[test]
    fn power_law_exponent_recovered() {
        let x = [2.0, 4.0, 8.0, 16.0, 32.0];
        let y: Vec<f64> = x.iter().map(|&v: &f64| 3.0 * v.powf(1.5)).collect();
        let fit = log_log_fit(&x, &y);
        assert!((fit.slope - 1.5).abs() < 1e-10);
        assert!((fit.intercept - 3f64.ln()).abs() < 1e-10);
    }

    #[test]
    fn constant_y_has_unit_r_squared() {
        let fit = linear_fit(&[1.0, 2.0, 3.0], &[5.0, 5.0, 5.0]);
        assert_eq!(fit.slope, 0.0);
        assert_eq!(fit.r_squared, 1.0);
    }

    #[test]
    #[should_panic(expected = "identical")]
    fn degenerate_x_panics() {
        linear_fit(&[2.0, 2.0], &[1.0, 3.0]);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn log_log_rejects_nonpositive() {
        log_log_fit(&[1.0, 0.0], &[1.0, 2.0]);
    }
}
