//! Reproducible seed derivation.
//!
//! Monte-Carlo experiments run trials across threads; each trial needs an
//! independent, reproducible RNG seed. [`SeedSequence`] derives a stream of
//! well-mixed 64-bit seeds from a master seed using SplitMix64 — the
//! standard seeding construction, chosen because consecutive master seeds
//! or trial indices still produce decorrelated outputs.

/// A deterministic stream of derived 64-bit seeds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSequence {
    master: u64,
}

impl SeedSequence {
    /// Creates a sequence from a master seed.
    pub fn new(master: u64) -> Self {
        SeedSequence { master }
    }

    /// The master seed. `SeedSequence::new(seq.master())` reproduces the
    /// sequence exactly — the hook that lets a declarative scenario spec
    /// (`od-sim`) carry a derived child sequence as one plain integer.
    pub fn master(&self) -> u64 {
        self.master
    }

    /// The seed for trial `index`. Pure function: the same `(master, index)`
    /// always produces the same seed, so trials can be distributed across
    /// threads in any order.
    pub fn seed(&self, index: u64) -> u64 {
        splitmix64(self.master ^ splitmix64(index.wrapping_add(0x517C_C1B7_2722_0A95)))
    }

    /// A derived child sequence, for nested experiments (e.g. one child per
    /// parameter combination, each producing per-trial seeds).
    pub fn child(&self, index: u64) -> SeedSequence {
        SeedSequence {
            master: self.seed(index ^ 0xDEAD_BEEF_CAFE_F00D),
        }
    }
}

/// SplitMix64 mixing function (Steele, Lea, Flood 2014).
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn deterministic() {
        let s = SeedSequence::new(42);
        assert_eq!(s.seed(7), SeedSequence::new(42).seed(7));
        assert_eq!(s.child(3).seed(1), s.child(3).seed(1));
    }

    #[test]
    fn distinct_across_indices_and_masters() {
        let s = SeedSequence::new(1);
        let mut seen = HashSet::new();
        for i in 0..10_000 {
            assert!(seen.insert(s.seed(i)), "collision at index {i}");
        }
        // Nearby masters produce different streams.
        assert_ne!(SeedSequence::new(1).seed(0), SeedSequence::new(2).seed(0));
    }

    #[test]
    fn children_are_decorrelated_from_parent() {
        let s = SeedSequence::new(99);
        let c = s.child(0);
        let overlap = (0..1000).filter(|&i| s.seed(i) == c.seed(i)).count();
        assert_eq!(overlap, 0);
    }

    #[test]
    fn splitmix_known_vector() {
        // First output of SplitMix64 seeded with 0 (reference value).
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn bits_look_balanced() {
        // Crude sanity: across many derived seeds, each bit position should
        // be set roughly half the time.
        let s = SeedSequence::new(0xABCD);
        let n = 4096;
        for bit in 0..64 {
            let ones = (0..n).filter(|&i| s.seed(i) >> bit & 1 == 1).count();
            let frac = ones as f64 / n as f64;
            assert!((frac - 0.5).abs() < 0.05, "bit {bit} frac {frac}");
        }
    }
}
