//! Numerically stable online first and second moments (Welford / Chan).
//!
//! Variance estimation of the convergence value `F` runs tens of thousands
//! of independent trials across threads; accumulators must be mergeable
//! (Chan's parallel update) and stable against catastrophic cancellation
//! (the `F` values concentrate tightly around the initial average, which is
//! exactly the regime where the naive `E[X²] − E[X]²` formula fails).

/// Online mean/variance accumulator.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
    }

    /// Merges another accumulator into this one (Chan's formula). The result
    /// is identical (up to rounding) to having pushed both sample streams
    /// into a single accumulator.
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        let w = other.count as f64 / total as f64;
        self.mean += delta * w;
        self.m2 += other.m2 + delta * delta * (self.count as f64) * w;
        self.count = total;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        (self.count > 0).then_some(self.mean)
    }

    /// Unbiased sample variance (`n−1` denominator); `None` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> Option<f64> {
        (self.count > 1).then(|| self.m2 / (self.count - 1) as f64)
    }

    /// Population variance (`n` denominator); `None` when empty.
    pub fn population_variance(&self) -> Option<f64> {
        (self.count > 0).then(|| self.m2 / self.count as f64)
    }

    /// Sample standard deviation; `None` for fewer than two observations.
    pub fn sample_std(&self) -> Option<f64> {
        self.sample_variance().map(f64::sqrt)
    }

    /// Standard error of the mean; `None` for fewer than two observations.
    pub fn standard_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| (v / self.count as f64).sqrt())
    }

    /// Approximate standard error of the *sample variance* itself, assuming
    /// near-normal data: `s² · √(2/(n−1))`. The variance experiments report
    /// `Var(F) ± 2·se` so the paper's predicted value can be checked against
    /// a confidence band. `None` for fewer than two observations.
    pub fn variance_standard_error(&self) -> Option<f64> {
        self.sample_variance()
            .map(|v| v * (2.0 / (self.count as f64 - 1.0)).sqrt())
    }
}

impl Extend<f64> for Welford {
    fn extend<T: IntoIterator<Item = f64>>(&mut self, iter: T) {
        for x in iter {
            self.push(x);
        }
    }
}

impl FromIterator<f64> for Welford {
    fn from_iter<T: IntoIterator<Item = f64>>(iter: T) -> Self {
        let mut w = Welford::new();
        w.extend(iter);
        w
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_accumulator() {
        let w = Welford::new();
        assert_eq!(w.count(), 0);
        assert_eq!(w.mean(), None);
        assert_eq!(w.sample_variance(), None);
        assert_eq!(w.population_variance(), None);
    }

    #[test]
    fn single_observation() {
        let w: Welford = [5.0].into_iter().collect();
        assert_eq!(w.mean(), Some(5.0));
        assert_eq!(w.sample_variance(), None);
        assert_eq!(w.population_variance(), Some(0.0));
    }

    #[test]
    fn known_small_sample() {
        // 1,2,3,4: mean 2.5, sample variance 5/3, population variance 1.25.
        let w: Welford = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(w.count(), 4);
        assert!((w.mean().unwrap() - 2.5).abs() < 1e-14);
        assert!((w.sample_variance().unwrap() - 5.0 / 3.0).abs() < 1e-14);
        assert!((w.population_variance().unwrap() - 1.25).abs() < 1e-14);
    }

    #[test]
    fn merge_equals_sequential() {
        let data: Vec<f64> = (0..1000).map(|i| ((i * 37) % 101) as f64 * 0.25).collect();
        let sequential: Welford = data.iter().copied().collect();
        let (a, b) = data.split_at(300);
        let mut left: Welford = a.iter().copied().collect();
        let right: Welford = b.iter().copied().collect();
        left.merge(&right);
        assert_eq!(left.count(), sequential.count());
        assert!((left.mean().unwrap() - sequential.mean().unwrap()).abs() < 1e-10);
        assert!(
            (left.sample_variance().unwrap() - sequential.sample_variance().unwrap()).abs() < 1e-9
        );
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut w: Welford = [1.0, 2.0].into_iter().collect();
        let before = w;
        w.merge(&Welford::new());
        assert_eq!(w, before);

        let mut empty = Welford::new();
        empty.merge(&before);
        assert_eq!(empty, before);
    }

    #[test]
    fn stable_around_large_offset() {
        // Naive E[X²]−E[X]² catastrophically cancels here; Welford must not.
        let offset = 1e9;
        let w: Welford = (0..1000).map(|i| offset + (i % 2) as f64).collect();
        assert!((w.sample_variance().unwrap() - 0.2502502502502503).abs() < 1e-6);
    }

    #[test]
    fn standard_errors_scale_with_n() {
        let small: Welford = (0..100).map(|i| (i % 10) as f64).collect();
        let large: Welford = (0..10_000).map(|i| (i % 10) as f64).collect();
        assert!(large.standard_error().unwrap() < small.standard_error().unwrap());
        assert!(
            large.variance_standard_error().unwrap() < small.variance_standard_error().unwrap()
        );
    }
}
