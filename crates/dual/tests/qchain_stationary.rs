//! Lemma 5.7 stationary-distribution checks on the canonical graph zoo:
//! the complete graph `K_8`, cycles, and the star (via the general chain,
//! since the star is irregular and has no closed form).

use od_dual::{GeneralQChain, QChain};
use od_graph::generators;
use od_linalg::markov::total_variation;

/// TV tolerance for power iteration run to a 1e-13 fixed-point residual.
const TV_TOL: f64 = 1e-9;

fn assert_probability_vector(name: &str, mu: &[f64]) {
    let total: f64 = mu.iter().sum();
    assert!((total - 1.0).abs() < 1e-12, "{name}: sums to {total}");
    assert!(
        mu.iter().all(|&p| (0.0..=1.0).contains(&p)),
        "{name}: entry outside [0,1]"
    );
}

#[test]
fn closed_form_on_k8_sums_to_one_and_matches_power_iteration() {
    let g = generators::complete(8).unwrap();
    for (alpha, k) in [(0.5, 1usize), (0.5, 3), (0.2, 7), (0.8, 2)] {
        let q = QChain::new(&g, alpha, k).unwrap();
        let closed = q.closed_form_vector();
        assert_probability_vector(&format!("K8 a={alpha} k={k}"), &closed);

        let numeric = q.stationary_numeric(1e-13, 200_000);
        assert!(numeric.converged, "K8 a={alpha} k={k}: diverged");
        let tv = total_variation(&numeric.distribution, &closed);
        assert!(tv < TV_TOL, "K8 a={alpha} k={k}: TV {tv}");
    }
}

#[test]
fn closed_form_on_cycles_sums_to_one_and_matches_power_iteration() {
    for n in [4usize, 5, 9, 16] {
        let g = generators::cycle(n).unwrap();
        for k in [1usize, 2] {
            let q = QChain::new(&g, 0.5, k).unwrap();
            let closed = q.closed_form_vector();
            assert_probability_vector(&format!("C{n} k={k}"), &closed);

            let numeric = q.stationary_numeric(1e-13, 400_000);
            assert!(numeric.converged, "C{n} k={k}: diverged");
            let tv = total_variation(&numeric.distribution, &closed);
            assert!(tv < TV_TOL, "C{n} k={k}: TV {tv}");
        }
    }
}

#[test]
fn star_rejects_closed_form_but_general_chain_converges() {
    // The star is irregular, so Lemma 5.7 does not apply: the regular chain
    // must refuse it, and the general chain's power iteration must still
    // produce a genuine stationary probability vector.
    let g = generators::star(8).unwrap();
    assert!(QChain::new(&g, 0.5, 1).is_err(), "star accepted as regular");

    let q = GeneralQChain::new(&g, 0.5, 1).unwrap();
    let numeric = q.stationary_numeric(1e-13, 400_000);
    assert!(numeric.converged, "star: power iteration diverged");
    assert_probability_vector("star", &numeric.distribution);

    // Fixed-point certificate: one more application of Q moves nothing.
    let mut next = vec![0.0; q.state_count()];
    q.apply_left(&numeric.distribution, &mut next);
    let residual = numeric
        .distribution
        .iter()
        .zip(&next)
        .map(|(a, b)| (a - b).abs())
        .fold(0.0f64, f64::max);
    assert!(residual < 1e-12, "star: balance residual {residual}");
}

#[test]
fn closed_form_class_values_are_ordered_on_k8() {
    // On K_8 there is no distance-≥2 class; diagonal mass must dominate
    // adjacent mass for every admissible (α, k).
    let g = generators::complete(8).unwrap();
    for (alpha, k) in [(0.3, 1usize), (0.5, 4), (0.9, 7)] {
        let q = QChain::new(&g, alpha, k).unwrap();
        let c = q.closed_form();
        assert!(
            c.mu0 > c.mu1,
            "a={alpha} k={k}: mu0 {} <= mu1 {}",
            c.mu0,
            c.mu1
        );
        assert!(c.mu1 > 0.0);
    }
}
