use crate::error::DualError;
use od_graph::{Graph, NodeId};
use od_linalg::markov::{self, StationaryResult};

/// Distance class of a `Q`-chain state `(u, v)` (Definition 5.6).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StateClass {
    /// `u = v` (distance 0).
    S0,
    /// `{u, v} ∈ E` (distance 1).
    S1,
    /// Distance at least 2.
    SPlus,
}

/// The three stationary values of Lemma 5.7, together with the constants
/// `γ = k(1+α) − (1−α)` and `ℓ` of the lemma.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StationaryClasses {
    /// `μ(u, u) = 2k(d−1)·ℓ` for diagonal states.
    pub mu0: f64,
    /// `μ(u, v) = (d−1)γ·ℓ` for adjacent pairs.
    pub mu1: f64,
    /// `μ(u, v) = (dγ − 2αk)·ℓ` for pairs at distance ≥ 2.
    pub mu_plus: f64,
    /// `γ = k(1+α) − (1−α)`.
    pub gamma: f64,
    /// `ℓ = 1 / ( n·( n(dγ − 2αk) + 2(1−α)(d−k) ) )`.
    pub ell: f64,
}

/// The joint chain of two correlated random walks (§5.3) on a `d`-regular
/// graph — state space `V × V`, transition probabilities Eqs. (14)–(21).
///
/// The chain is irreducible, aperiodic and (for `k > 1`) **not**
/// reversible, yet its stationary distribution has the three-value closed
/// form of Lemma 5.7 depending only on the distance class of the state.
/// The variance of the convergence value `F` of the Averaging Process is a
/// quadratic form in this distribution (Prop. 5.8).
#[derive(Debug, Clone)]
pub struct QChain<'g> {
    graph: &'g Graph,
    d: usize,
    alpha: f64,
    k: usize,
}

impl<'g> QChain<'g> {
    /// Creates the chain for the NodeModel with parameters `(α, k)` on a
    /// connected regular graph.
    ///
    /// # Errors
    ///
    /// [`DualError::NotRegular`], [`DualError::Disconnected`],
    /// [`DualError::InvalidAlpha`] (`α ∉ (0, 1)`), or
    /// [`DualError::InvalidSampleSize`] (`k ∉ [1, d]`).
    pub fn new(graph: &'g Graph, alpha: f64, k: usize) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 3 {
            return Err(DualError::Disconnected);
        }
        let Some(d) = graph.regular_degree() else {
            return Err(DualError::NotRegular);
        };
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        if k == 0 || k > d {
            return Err(DualError::InvalidSampleSize { k, d });
        }
        Ok(QChain { graph, d, alpha, k })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The regular degree `d`.
    pub fn degree(&self) -> usize {
        self.d
    }

    /// Number of joint states `n²`.
    pub fn state_count(&self) -> usize {
        self.graph.n() * self.graph.n()
    }

    /// Flat index of state `(u, v)`.
    pub fn state_index(&self, u: NodeId, v: NodeId) -> usize {
        u as usize * self.graph.n() + v as usize
    }

    /// Distance class of `(u, v)` (Definition 5.6). Only adjacency is
    /// needed: distinct non-adjacent nodes of a connected graph are at
    /// distance ≥ 2.
    pub fn classify(&self, u: NodeId, v: NodeId) -> StateClass {
        if u == v {
            StateClass::S0
        } else if self.graph.has_edge(u, v) {
            StateClass::S1
        } else {
            StateClass::SPlus
        }
    }

    /// Lemma 5.7's closed-form stationary values.
    pub fn closed_form(&self) -> StationaryClasses {
        let n = self.graph.n() as f64;
        let d = self.d as f64;
        let k = self.k as f64;
        let alpha = self.alpha;
        let gamma = k * (1.0 + alpha) - (1.0 - alpha);
        let ell = 1.0 / (n * (n * (d * gamma - 2.0 * alpha * k) + 2.0 * (1.0 - alpha) * (d - k)));
        StationaryClasses {
            mu0: 2.0 * k * (d - 1.0) * ell,
            mu1: (d - 1.0) * gamma * ell,
            mu_plus: (d * gamma - 2.0 * alpha * k) * ell,
            gamma,
            ell,
        }
    }

    /// The closed-form stationary distribution as a full `n²` vector
    /// (flat index = [`Self::state_index`]).
    pub fn closed_form_vector(&self) -> Vec<f64> {
        let classes = self.closed_form();
        let n = self.graph.n() as NodeId;
        let mut mu = vec![0.0; self.state_count()];
        for u in 0..n {
            for v in 0..n {
                mu[self.state_index(u, v)] = match self.classify(u, v) {
                    StateClass::S0 => classes.mu0,
                    StateClass::S1 => classes.mu1,
                    StateClass::SPlus => classes.mu_plus,
                };
            }
        }
        mu
    }

    /// Left multiplication `y ← xQ` with the transition probabilities of
    /// Eqs. (14)–(21), never materializing the `n² × n²` matrix.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn apply_left(&self, x: &[f64], y: &mut [f64]) {
        let n = self.graph.n();
        assert_eq!(x.len(), n * n, "x must have n² entries");
        assert_eq!(y.len(), n * n, "y must have n² entries");
        y.fill(0.0);
        let pi = 1.0 / n as f64; // uniform node selection on regular graphs
        let alpha = self.alpha;
        let d = self.d as f64;
        let k = self.k as f64;

        // Precomputed transition weights.
        let w_same_self = alpha * alpha * pi + (1.0 - pi); // (18)
        let w_same_to_uu = (1.0 - alpha) * (1.0 - alpha) * pi / (k * d); // (15)
        let w_same_one_moves = alpha * (1.0 - alpha) * pi / d; // (16)/(17)
        let w_same_to_uv = if self.k > 1 {
            (1.0 - alpha) * (1.0 - alpha) * pi * (k - 1.0) / (k * d * (d - 1.0))
        // (14)
        } else {
            0.0
        };
        let w_diff_self = (1.0 - 2.0 * pi) + 2.0 * pi * alpha; // (21)
        let w_diff_move = (1.0 - alpha) * pi / d; // (19)/(20)

        for a in 0..n as NodeId {
            for b in 0..n as NodeId {
                let mass = x[self.state_index(a, b)];
                // od-lint: allow(F1) — exact sentinel: skip states carrying literally zero probability mass
                if mass == 0.0 {
                    continue;
                }
                if a == b {
                    let x_node = a;
                    y[self.state_index(x_node, x_node)] += mass * w_same_self;
                    let neighbors = self.graph.neighbors(x_node);
                    for &u in neighbors {
                        y[self.state_index(u, u)] += mass * w_same_to_uu;
                        y[self.state_index(x_node, u)] += mass * w_same_one_moves;
                        y[self.state_index(u, x_node)] += mass * w_same_one_moves;
                    }
                    if w_same_to_uv > 0.0 {
                        for &u in neighbors {
                            for &v in neighbors {
                                if u != v {
                                    y[self.state_index(u, v)] += mass * w_same_to_uv;
                                }
                            }
                        }
                    }
                } else {
                    y[self.state_index(a, b)] += mass * w_diff_self;
                    for &v in self.graph.neighbors(b) {
                        y[self.state_index(a, v)] += mass * w_diff_move;
                    }
                    for &u in self.graph.neighbors(a) {
                        y[self.state_index(u, b)] += mass * w_diff_move;
                    }
                }
            }
        }
    }

    /// Numeric stationary distribution by power iteration over the
    /// implicit operator.
    pub fn stationary_numeric(&self, tol: f64, max_iter: usize) -> StationaryResult {
        let apply = |x: &[f64], y: &mut [f64]| self.apply_left(x, y);
        markov::stationary_left(&apply, self.state_count(), tol, max_iter)
    }

    /// `max_s |(μQ)_s − μ_s|` for the closed-form `μ` — the certificate
    /// that Lemma 5.7 solves the balance equations on this graph.
    pub fn closed_form_balance_residual(&self) -> f64 {
        let mu = self.closed_form_vector();
        let apply = |x: &[f64], y: &mut [f64]| self.apply_left(x, y);
        markov::balance_residual(&apply, &mu)
    }
}

/// The two-walk chain on an **arbitrary** connected graph — the paper's
/// second open question (§6) made computable.
///
/// The duality chain (Prop. 5.1 → Prop. 5.4 → Lemma 5.5) never uses
/// regularity; only Lemma 5.7's closed form does. This struct implements
/// the general transition probabilities (uniform node selection `1/n`,
/// per-node degrees `d_x`) and computes the stationary distribution
/// numerically, which yields an exact-up-to-mixing prediction of
/// `Var(F) = Σ μ(u,v) ξ_u ξ_v` for the NodeModel on irregular graphs
/// (with `ξ` centered at the *π-weighted* mean, since `F`'s expectation is
/// the degree-weighted average).
#[derive(Debug, Clone)]
pub struct GeneralQChain<'g> {
    graph: &'g Graph,
    alpha: f64,
    k: usize,
}

impl<'g> GeneralQChain<'g> {
    /// Creates the chain for NodeModel parameters `(α, k)` on any
    /// connected graph with `d_min ≥ k`.
    ///
    /// # Errors
    ///
    /// [`DualError::Disconnected`], [`DualError::InvalidAlpha`]
    /// (`α ∉ (0, 1)`) or [`DualError::InvalidSampleSize`].
    pub fn new(graph: &'g Graph, alpha: f64, k: usize) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 3 {
            return Err(DualError::Disconnected);
        }
        if !(alpha.is_finite() && alpha > 0.0 && alpha < 1.0) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        let d_min = graph.min_degree();
        if k == 0 || k > d_min {
            return Err(DualError::InvalidSampleSize { k, d: d_min });
        }
        Ok(GeneralQChain { graph, alpha, k })
    }

    /// Number of joint states `n²`.
    pub fn state_count(&self) -> usize {
        self.graph.n() * self.graph.n()
    }

    /// Flat index of state `(u, v)`.
    pub fn state_index(&self, u: NodeId, v: NodeId) -> usize {
        u as usize * self.graph.n() + v as usize
    }

    /// Left multiplication `y ← xQ` with per-node degrees.
    ///
    /// # Panics
    ///
    /// Panics on length mismatches.
    pub fn apply_left(&self, x: &[f64], y: &mut [f64]) {
        let n = self.graph.n();
        assert_eq!(x.len(), n * n, "x must have n² entries");
        assert_eq!(y.len(), n * n, "y must have n² entries");
        y.fill(0.0);
        let sel = 1.0 / n as f64;
        let alpha = self.alpha;
        let k = self.k as f64;

        for a in 0..n as NodeId {
            for b in 0..n as NodeId {
                let mass = x[self.state_index(a, b)];
                // od-lint: allow(F1) — exact sentinel: skip states carrying literally zero probability mass
                if mass == 0.0 {
                    continue;
                }
                if a == b {
                    let d = self.graph.degree(a) as f64;
                    let w_self = alpha * alpha * sel + (1.0 - sel);
                    let w_uu = (1.0 - alpha) * (1.0 - alpha) * sel / (k * d);
                    let w_one = alpha * (1.0 - alpha) * sel / d;
                    let w_uv = if self.k > 1 {
                        (1.0 - alpha) * (1.0 - alpha) * sel * (k - 1.0) / (k * d * (d - 1.0))
                    } else {
                        0.0
                    };
                    y[self.state_index(a, a)] += mass * w_self;
                    let neighbors = self.graph.neighbors(a);
                    for &u in neighbors {
                        y[self.state_index(u, u)] += mass * w_uu;
                        y[self.state_index(a, u)] += mass * w_one;
                        y[self.state_index(u, a)] += mass * w_one;
                    }
                    if w_uv > 0.0 {
                        for &u in neighbors {
                            for &v in neighbors {
                                if u != v {
                                    y[self.state_index(u, v)] += mass * w_uv;
                                }
                            }
                        }
                    }
                } else {
                    y[self.state_index(a, b)] += mass * ((1.0 - 2.0 * sel) + 2.0 * sel * alpha);
                    let db = self.graph.degree(b) as f64;
                    for &v in self.graph.neighbors(b) {
                        y[self.state_index(a, v)] += mass * (1.0 - alpha) * sel / db;
                    }
                    let da = self.graph.degree(a) as f64;
                    for &u in self.graph.neighbors(a) {
                        y[self.state_index(u, b)] += mass * (1.0 - alpha) * sel / da;
                    }
                }
            }
        }
    }

    /// Numeric stationary distribution by power iteration.
    pub fn stationary_numeric(&self, tol: f64, max_iter: usize) -> StationaryResult {
        let apply = |x: &[f64], y: &mut [f64]| self.apply_left(x, y);
        markov::stationary_left(&apply, self.state_count(), tol, max_iter)
    }

    /// Numeric variance prediction `Var(F) = Σ μ(u,v) ξ_u ξ_v` with `ξ`
    /// centered at the π-weighted mean (the expectation of `F` on general
    /// graphs, Lemma 4.1).
    ///
    /// # Errors
    ///
    /// [`DualError::LengthMismatch`] on a wrong-sized `xi0`.
    pub fn predict_variance_numeric(
        &self,
        xi0: &[f64],
        tol: f64,
        max_iter: usize,
    ) -> Result<f64, DualError> {
        let n = self.graph.n();
        if xi0.len() != n {
            return Err(DualError::LengthMismatch {
                got: xi0.len(),
                expected: n,
            });
        }
        let pi = self.graph.stationary_distribution();
        let m0: f64 = pi.iter().zip(xi0).map(|(w, v)| w * v).sum();
        let xi: Vec<f64> = xi0.iter().map(|v| v - m0).collect();
        let mu = self.stationary_numeric(tol, max_iter).distribution;
        let mut var = 0.0;
        for u in 0..n as NodeId {
            for v in 0..n as NodeId {
                var += mu[self.state_index(u, v)] * xi[u as usize] * xi[v as usize];
            }
        }
        Ok(var)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_graph::generators;
    use od_linalg::markov::total_variation;

    fn chains() -> Vec<(&'static str, Graph, f64, usize)> {
        vec![
            ("cycle6/a.5/k1", generators::cycle(6).unwrap(), 0.5, 1),
            ("cycle6/a.5/k2", generators::cycle(6).unwrap(), 0.5, 2),
            ("cycle7/a.3/k1", generators::cycle(7).unwrap(), 0.3, 1),
            ("K5/a.5/k2", generators::complete(5).unwrap(), 0.5, 2),
            ("K5/a.7/k4", generators::complete(5).unwrap(), 0.7, 4),
            ("petersen/a.5/k2", generators::petersen(), 0.5, 2),
            ("petersen/a.25/k3", generators::petersen(), 0.25, 3),
            ("Q3/a.5/k1", generators::hypercube(3).unwrap(), 0.5, 1),
            ("Q3/a.6/k3", generators::hypercube(3).unwrap(), 0.6, 3),
            ("torus3x3/a.5/k2", generators::torus(3, 3).unwrap(), 0.5, 2),
        ]
    }

    #[test]
    fn construction_validation() {
        let star = generators::star(5).unwrap();
        assert_eq!(
            QChain::new(&star, 0.5, 1).unwrap_err(),
            DualError::NotRegular
        );
        let g = generators::cycle(5).unwrap();
        assert!(matches!(
            QChain::new(&g, 0.0, 1),
            Err(DualError::InvalidAlpha { .. })
        ));
        assert!(matches!(
            QChain::new(&g, 0.5, 3),
            Err(DualError::InvalidSampleSize { .. })
        ));
    }

    #[test]
    fn classification() {
        let g = generators::cycle(5).unwrap();
        let q = QChain::new(&g, 0.5, 1).unwrap();
        assert_eq!(q.classify(2, 2), StateClass::S0);
        assert_eq!(q.classify(2, 3), StateClass::S1);
        assert_eq!(q.classify(0, 2), StateClass::SPlus);
    }

    #[test]
    fn closed_form_normalizes() {
        // n·μ0 + 2|E|·μ1 + (n² − 2|E| − n)·μ+ = 1 (Eq. 56).
        for (name, g, alpha, k) in chains() {
            let q = QChain::new(&g, alpha, k).unwrap();
            let mu = q.closed_form_vector();
            let total: f64 = mu.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "{name}: sums to {total}");
            assert!(mu.iter().all(|&p| p >= 0.0), "{name}: negative mass");
        }
    }

    #[test]
    fn rows_are_stochastic() {
        // Pushing a point mass through Q must conserve probability.
        for (name, g, alpha, k) in chains() {
            let q = QChain::new(&g, alpha, k).unwrap();
            let n2 = q.state_count();
            for s in [0, 1, n2 / 2, n2 - 1] {
                let mut x = vec![0.0; n2];
                x[s] = 1.0;
                let mut y = vec![0.0; n2];
                q.apply_left(&x, &mut y);
                let total: f64 = y.iter().sum();
                assert!(
                    (total - 1.0).abs() < 1e-12,
                    "{name}: row {s} sums to {total}"
                );
                assert!(y.iter().all(|&p| p >= 0.0), "{name}: negative prob");
            }
        }
    }

    #[test]
    fn closed_form_satisfies_balance_equations() {
        // The heart of Lemma 5.7: μQ = μ, with the common-neighbour count c
        // cancelling on every graph. Petersen (c = 0 for adjacent pairs),
        // K5 (c = n−2) and the torus (mixed) probe different c regimes.
        for (name, g, alpha, k) in chains() {
            let q = QChain::new(&g, alpha, k).unwrap();
            let residual = q.closed_form_balance_residual();
            assert!(residual < 1e-13, "{name}: residual {residual}");
        }
    }

    #[test]
    fn numeric_stationary_matches_closed_form() {
        for (name, g, alpha, k) in chains() {
            let q = QChain::new(&g, alpha, k).unwrap();
            let numeric = q.stationary_numeric(1e-13, 200_000);
            assert!(numeric.converged, "{name}: power iteration diverged");
            let closed = q.closed_form_vector();
            let tv = total_variation(&numeric.distribution, &closed);
            assert!(tv < 1e-9, "{name}: TV distance {tv}");
        }
    }

    #[test]
    fn derived_class_gaps_match_algebra() {
        // μ0 − μ+ = ℓ(1−α)(d(k+1) − 2k); μ1 − μ+ = −ℓ(1−α)(k−1).
        for (name, g, alpha, k) in chains() {
            let q = QChain::new(&g, alpha, k).unwrap();
            let c = q.closed_form();
            let d = q.degree() as f64;
            let kf = k as f64;
            let gap0 = c.ell * (1.0 - alpha) * (d * (kf + 1.0) - 2.0 * kf);
            let gap1 = -c.ell * (1.0 - alpha) * (kf - 1.0);
            assert!((c.mu0 - c.mu_plus - gap0).abs() < 1e-15, "{name} gap0");
            assert!((c.mu1 - c.mu_plus - gap1).abs() < 1e-15, "{name} gap1");
        }
    }

    #[test]
    fn k1_collapses_adjacent_and_distant_classes() {
        // For k = 1, μ1 = μ+ (the edge term of Prop. 5.8 vanishes).
        let g = generators::petersen();
        let q = QChain::new(&g, 0.5, 1).unwrap();
        let c = q.closed_form();
        assert!((c.mu1 - c.mu_plus).abs() < 1e-18);
        assert!(c.mu0 > c.mu_plus);
    }

    #[test]
    fn general_chain_matches_regular_chain_on_regular_graphs() {
        // Cross-validation: on regular graphs the general chain's numeric
        // stationary distribution must equal Lemma 5.7's closed form.
        for (name, g, alpha, k) in [
            ("cycle(8)", generators::cycle(8).unwrap(), 0.5, 2usize),
            ("petersen", generators::petersen(), 0.3, 2),
        ] {
            let regular = QChain::new(&g, alpha, k).unwrap();
            let general = GeneralQChain::new(&g, alpha, k).unwrap();
            let numeric = general.stationary_numeric(1e-13, 400_000);
            assert!(numeric.converged, "{name}");
            let tv = total_variation(&numeric.distribution, &regular.closed_form_vector());
            assert!(tv < 1e-9, "{name}: TV {tv}");
        }
    }

    #[test]
    fn general_chain_rows_are_stochastic_on_irregular_graphs() {
        let g = generators::star(7).unwrap();
        let q = GeneralQChain::new(&g, 0.5, 1).unwrap();
        let n2 = q.state_count();
        for s in [0usize, 5, n2 / 2, n2 - 1] {
            let mut x = vec![0.0; n2];
            x[s] = 1.0;
            let mut y = vec![0.0; n2];
            q.apply_left(&x, &mut y);
            let total: f64 = y.iter().sum();
            assert!((total - 1.0).abs() < 1e-12, "row {s} sums to {total}");
            assert!(y.iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn general_chain_predicts_variance_invariant_to_shift() {
        let g = generators::barbell(4).unwrap();
        let q = GeneralQChain::new(&g, 0.5, 1).unwrap();
        let xi0: Vec<f64> = (0..8).map(f64::from).collect();
        let shifted: Vec<f64> = xi0.iter().map(|v| v + 50.0).collect();
        let a = q.predict_variance_numeric(&xi0, 1e-12, 400_000).unwrap();
        let b = q
            .predict_variance_numeric(&shifted, 1e-12, 400_000)
            .unwrap();
        assert!((a - b).abs() < 1e-8, "{a} vs {b}");
        assert!(a > 0.0);
    }

    #[test]
    fn chain_is_not_reversible_for_k_greater_1() {
        // Lemma 5.7's remark: (x,x) -> (u,v) with dist(u,v) = 2 is possible
        // but the reverse is not. Verify via one-step probabilities on the
        // cycle: from (1,1), the pair can jump to (0,2).
        let g = generators::cycle(6).unwrap();
        let q = QChain::new(&g, 0.5, 2).unwrap();
        let n2 = q.state_count();
        let mut x = vec![0.0; n2];
        x[q.state_index(1, 1)] = 1.0;
        let mut y = vec![0.0; n2];
        q.apply_left(&x, &mut y);
        assert!(y[q.state_index(0, 2)] > 0.0, "forward transition exists");

        let mut x = vec![0.0; n2];
        x[q.state_index(0, 2)] = 1.0;
        q.apply_left(&x, &mut y);
        assert_eq!(y[q.state_index(1, 1)], 0.0, "reverse transition impossible");
    }

    use od_graph::Graph;
}
