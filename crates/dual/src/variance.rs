//! Proposition 5.8: the exact variance of the convergence value `F`.
//!
//! For the NodeModel on a `d`-regular graph with `Avg(ξ(0)) = 0`,
//!
//! `Var(F) = (μ0 − μ+)·Σ_u ξ_u² + (μ1 − μ+)·Σ_{(u,v)∈E⁺} ξ_u ξ_v ± 1/n⁵`,
//!
//! where `E⁺` is the set of *directed* edges and `μ0, μ1, μ+` come from
//! Lemma 5.7. Since `F` merely shifts under a constant shift of `ξ(0)`,
//! the predictor centers the input first, making it valid for any `ξ(0)`.
//!
//! **Reproduction note.** The paper's proof of Theorem 2.2(2) states the
//! Θ-envelope constants as `2k(d−1)(1−α)/(n²(3dk+d−3k))` (upper) and
//! `2(1−α)(2dk−d−k)/(n²(3dk+d−3k))` (lower). Those do not follow from the
//! μ-values of Lemma 5.7: substituting gives
//! `upper = [(μ0−μ+) − d(μ1−μ+)]·‖ξ‖² = 2k(d−1)(1−α)·ℓ·‖ξ‖²` and
//! `lower = [(μ0−μ+) + d(μ1−μ+)]·‖ξ‖² = 2(1−α)(d−k)·ℓ·‖ξ‖²`, with
//! `ℓ ≠ 1/(n²(3dk+d−3k))` in general. We implement the μ-based envelope
//! (which is what Eqs. (23)/(25) actually derive) and validate it
//! empirically in experiment P58; `EXPERIMENTS.md` records the discrepancy.

use crate::error::DualError;
use crate::qchain::QChain;

/// Variance prediction for the convergence value `F`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct VariancePrediction {
    /// The exact quadratic form of Prop. 5.8 (up to the `±1/n⁵` mixing
    /// remainder).
    pub exact: f64,
    /// Θ-envelope upper bound `[(μ0−μ+) − d(μ1−μ+)]·‖ξ‖²` — the worst case
    /// of the edge term.
    pub upper: f64,
    /// Θ-envelope lower bound `[(μ0−μ+) + d(μ1−μ+)]·‖ξ‖²`.
    pub lower: f64,
    /// The `1/n⁵` mixing remainder, for reporting.
    pub remainder: f64,
}

/// Predicts `Var(F)` for the NodeModel `(α, k)` on the regular graph
/// underlying `chain`, for initial values `xi0` (centered internally).
///
/// # Errors
///
/// [`DualError::LengthMismatch`] if `xi0.len()` differs from the node
/// count.
pub fn predict_variance(chain: &QChain<'_>, xi0: &[f64]) -> Result<VariancePrediction, DualError> {
    let g = chain.graph();
    let n = g.n();
    if xi0.len() != n {
        return Err(DualError::LengthMismatch {
            got: xi0.len(),
            expected: n,
        });
    }
    let mean = xi0.iter().sum::<f64>() / n as f64;
    let xi: Vec<f64> = xi0.iter().map(|v| v - mean).collect();

    let classes = chain.closed_form();
    let d = chain.degree() as f64;
    let gap0 = classes.mu0 - classes.mu_plus;
    let gap1 = classes.mu1 - classes.mu_plus;

    let norm_sq: f64 = xi.iter().map(|v| v * v).sum();
    // Σ over directed edges = 2 Σ over undirected edges.
    let edge_term: f64 = 2.0
        * g.edges()
            .map(|(u, v)| xi[u as usize] * xi[v as usize])
            .sum::<f64>();

    let exact = gap0 * norm_sq + gap1 * edge_term;
    let upper = (gap0 - d * gap1) * norm_sq;
    let lower = (gap0 + d * gap1) * norm_sq;
    let remainder = (n as f64).powi(-5);
    Ok(VariancePrediction {
        exact,
        upper,
        lower,
        remainder,
    })
}

/// Exact `Var(F)` for `k = 1` in fully closed form:
///
/// `Var(F) = (1−α)·‖ξ_c‖² / ( n(αn + 1 − α) )`,
///
/// where `‖ξ_c‖²` is the squared norm of the *centered* initial values.
/// This is independent of the (regular) graph — the structure-independence
/// highlighted in the paper's introduction. `d` does not appear.
pub fn variance_k1_closed_form(n: usize, alpha: f64, centered_norm_sq: f64) -> f64 {
    let nf = n as f64;
    (1.0 - alpha) * centered_norm_sq / (nf * (alpha * nf + 1.0 - alpha))
}

/// Centers `xi0` and returns `‖ξ_c‖²` — the `‖ξ(0)‖²` the paper's bounds
/// refer to after the w.l.o.g. `Avg(0) = 0` normalization.
pub fn centered_norm_sq(xi0: &[f64]) -> f64 {
    let n = xi0.len() as f64;
    let mean = xi0.iter().sum::<f64>() / n;
    xi0.iter().map(|v| (v - mean) * (v - mean)).sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_graph::generators;

    #[test]
    fn rejects_length_mismatch() {
        let g = generators::cycle(5).unwrap();
        let q = QChain::new(&g, 0.5, 1).unwrap();
        assert!(matches!(
            predict_variance(&q, &[1.0, 2.0]),
            Err(DualError::LengthMismatch { .. })
        ));
    }

    #[test]
    fn exact_within_envelope() {
        let g = generators::petersen();
        for &k in &[1usize, 2, 3] {
            let q = QChain::new(&g, 0.5, k).unwrap();
            let xi0: Vec<f64> = (0..10).map(|i| f64::from(i) - 4.5).collect();
            let p = predict_variance(&q, &xi0).unwrap();
            assert!(
                p.lower - 1e-15 <= p.exact && p.exact <= p.upper + 1e-15,
                "k={k}: {} <= {} <= {} violated",
                p.lower,
                p.exact,
                p.upper
            );
            assert!(p.exact > 0.0);
        }
    }

    #[test]
    fn k1_exact_matches_closed_form_and_ignores_structure() {
        // For k = 1 the edge term vanishes and Var(F) depends only on
        // (n, α, ‖ξ‖²): the cycle and the complete graph agree exactly.
        let xi0: Vec<f64> = (0..8).map(|i| f64::from(i) * 1.5 - 2.0).collect();
        let norm = centered_norm_sq(&xi0);

        let cy = generators::cycle(8).unwrap();
        let kn = generators::complete(8).unwrap();
        for alpha in [0.25, 0.5, 0.75] {
            let p_cy = predict_variance(&QChain::new(&cy, alpha, 1).unwrap(), &xi0).unwrap();
            let p_kn = predict_variance(&QChain::new(&kn, alpha, 1).unwrap(), &xi0).unwrap();
            let closed = variance_k1_closed_form(8, alpha, norm);
            assert!(
                (p_cy.exact - closed).abs() < 1e-15,
                "cycle vs closed form: {} vs {closed}",
                p_cy.exact
            );
            assert!(
                (p_kn.exact - closed).abs() < 1e-15,
                "complete vs closed form: {} vs {closed}",
                p_kn.exact
            );
        }
    }

    #[test]
    fn centering_is_internal() {
        // Shifting all initial values must not change the prediction.
        let g = generators::hypercube(3).unwrap();
        let q = QChain::new(&g, 0.5, 2).unwrap();
        let xi0: Vec<f64> = (0..8).map(f64::from).collect();
        let shifted: Vec<f64> = xi0.iter().map(|v| v + 100.0).collect();
        let a = predict_variance(&q, &xi0).unwrap();
        let b = predict_variance(&q, &shifted).unwrap();
        assert!((a.exact - b.exact).abs() < 1e-12);
        assert!((a.upper - b.upper).abs() < 1e-12);
    }

    #[test]
    fn variance_scales_as_norm_over_n_squared() {
        // Theorem 2.2(2): Var(F)·n²/‖ξ‖² stays Θ(1) as n grows.
        let mut ratios = Vec::new();
        for n in [8usize, 16, 32, 64] {
            let g = generators::cycle(n).unwrap();
            let q = QChain::new(&g, 0.5, 1).unwrap();
            let xi0: Vec<f64> = (0..n)
                .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
                .collect();
            let p = predict_variance(&q, &xi0).unwrap();
            let norm = centered_norm_sq(&xi0);
            ratios.push(p.exact * (n * n) as f64 / norm);
        }
        for r in &ratios {
            assert!(*r > 0.5 && *r < 2.5, "normalized variance {r}");
        }
    }

    #[test]
    fn zero_variance_for_constant_initials() {
        let g = generators::complete(6).unwrap();
        let q = QChain::new(&g, 0.5, 2).unwrap();
        let p = predict_variance(&q, &[3.0; 6]).unwrap();
        assert_eq!(p.exact, 0.0);
        assert_eq!(p.upper, 0.0);
    }

    #[test]
    fn alpha_extremes_change_variance_monotonically() {
        // Larger α (more self-weight) slows mixing of mass but reduces the
        // per-step jump; the k=1 closed form is decreasing in α.
        let norm = 10.0;
        let v25 = variance_k1_closed_form(16, 0.25, norm);
        let v50 = variance_k1_closed_form(16, 0.50, norm);
        let v75 = variance_k1_closed_form(16, 0.75, norm);
        assert!(v25 > v50 && v50 > v75, "{v25} {v50} {v75}");
    }
}
