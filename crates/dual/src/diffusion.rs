use crate::error::DualError;
use od_core::StepRecord;
use od_graph::{Graph, NodeId};
use od_linalg::DenseMatrix;

/// The Diffusion Process of §5.1 — the time-reversed dual of the Averaging
/// Process.
///
/// The process maintains `R(t) = B(t)·B(t−1)···B(1)` where `B(t)` is the
/// column-stochastic load-spreading matrix of Eq. (4): when node `u` with
/// sample `S` (|S| = k) is selected, `u` keeps an `α`-fraction of each
/// commodity load and sends `(1−α)/k` to every node of `S`. Column `u` of
/// `R(t)` is the load vector of commodity `u` (the commodity that started
/// as the unit load on `u`).
///
/// With cost vector `c = ξᵀ(0)`, the cost `W(t) = c · R(t)` satisfies the
/// duality of Lemma 5.2: running the Averaging Process on a selection
/// sequence `χ` and this process on the reversed sequence `χ^R` gives
/// `W(T) = ξᵀ(T)` exactly.
#[derive(Debug, Clone)]
pub struct DiffusionProcess<'g> {
    graph: &'g Graph,
    alpha: f64,
    /// `R(t)`, row-major; starts as the identity (`R(0) = I`).
    r: DenseMatrix,
    time: u64,
}

impl<'g> DiffusionProcess<'g> {
    /// Creates the process with `R(0) = I` (unit load of commodity `u` at
    /// node `u`, as in Proposition 5.1).
    ///
    /// # Errors
    ///
    /// [`DualError::Disconnected`] for disconnected graphs;
    /// [`DualError::InvalidAlpha`] for `α ∉ [0, 1)`.
    pub fn new(graph: &'g Graph, alpha: f64) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 2 {
            return Err(DualError::Disconnected);
        }
        if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        Ok(DiffusionProcess {
            graph,
            alpha,
            r: DenseMatrix::identity(graph.n()),
            time: 0,
        })
    }

    /// The underlying graph.
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Steps taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// The accumulated product `R(t)`.
    pub fn r_matrix(&self) -> &DenseMatrix {
        &self.r
    }

    /// Load vector of commodity `u` (column `u` of `R(t)`).
    pub fn load(&self, u: NodeId) -> Vec<f64> {
        self.r.col(u as usize)
    }

    /// The cost row vector `W(t) = c · R(t)` for cost `c` (Prop. 5.1 uses
    /// `c = ξᵀ(0)`).
    ///
    /// # Panics
    ///
    /// Panics if `cost.len() != n`.
    pub fn cost(&self, cost: &[f64]) -> Vec<f64> {
        self.r.vecmat(cost)
    }

    /// Applies one diffusion step `R ← B·R` for the selection in `record`.
    ///
    /// `Node` records spread to the sampled neighbours with weight
    /// `(1−α)/k`; `Edge` records are the `k = 1` special case; `Noop`
    /// advances time only.
    ///
    /// # Panics
    ///
    /// Panics if the record references a non-edge.
    pub fn apply(&mut self, record: &StepRecord) {
        match record {
            StepRecord::Noop => {}
            StepRecord::Node { node, sample } => {
                assert!(
                    sample.iter().all(|&v| self.graph.has_edge(*node, v)),
                    "record references a non-edge at node {node}"
                );
                self.spread(*node, sample);
            }
            StepRecord::Edge { tail, head } => {
                assert!(
                    self.graph.has_edge(*tail, *head),
                    "record references non-edge ({tail}, {head})"
                );
                self.spread(*tail, std::slice::from_ref(head));
            }
        }
        self.time += 1;
    }

    /// Applies a whole selection sequence **in reverse order** — the `χ^R`
    /// of Proposition 5.1.
    pub fn apply_reversed(&mut self, records: &[StepRecord]) {
        for record in records.iter().rev() {
            self.apply(record);
        }
    }

    /// `B·R` for the matrix `B` of Eq. (4): row `u` scaled by `α`, rows of
    /// `S` receive `(1−α)/k` of old row `u`.
    fn spread(&mut self, u: NodeId, sample: &[NodeId]) {
        let share = (1.0 - self.alpha) / sample.len() as f64;
        let old_row_u = self.r.row(u as usize).to_vec();
        for x in self.r.row_mut(u as usize) {
            *x *= self.alpha;
        }
        for &s in sample {
            assert_ne!(s, u, "sample may not contain the selected node");
            let row_s = self.r.row_mut(s as usize);
            for (dst, src) in row_s.iter_mut().zip(&old_row_u) {
                *dst += share * src;
            }
        }
    }

    /// Total load of each commodity (column sums of `R(t)`); conserved at 1
    /// by every step — `B(t)` is column-stochastic.
    pub fn commodity_totals(&self) -> Vec<f64> {
        let n = self.graph.n();
        (0..n).map(|j| self.r.col(j).iter().sum()).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_graph::generators;

    #[test]
    fn construction_validation() {
        let disconnected = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert_eq!(
            DiffusionProcess::new(&disconnected, 0.5).unwrap_err(),
            DualError::Disconnected
        );
        let g = generators::cycle(4).unwrap();
        assert!(matches!(
            DiffusionProcess::new(&g, 1.0),
            Err(DualError::InvalidAlpha { .. })
        ));
    }

    #[test]
    fn starts_at_identity() {
        let g = generators::cycle(4).unwrap();
        let d = DiffusionProcess::new(&g, 0.5).unwrap();
        assert_eq!(*d.r_matrix(), DenseMatrix::identity(4));
        assert_eq!(d.load(2), vec![0.0, 0.0, 1.0, 0.0]);
    }

    #[test]
    fn single_spread_step_paper_figure1() {
        // Figure 1(b), first diffusion step: u2 (index 1) sends 1/2 of its
        // load to u1 (index 0) on the path u1-u2-u3; R(1) column 1 becomes
        // [1/2, 1/2, 0].
        let g = generators::path(3).unwrap();
        let mut d = DiffusionProcess::new(&g, 0.5).unwrap();
        d.apply(&StepRecord::Node {
            node: 1,
            sample: vec![0],
        });
        assert_eq!(d.load(1), vec![0.5, 0.5, 0.0]);
        assert_eq!(d.load(0), vec![1.0, 0.0, 0.0]);
        assert_eq!(d.load(2), vec![0.0, 0.0, 1.0]);
        assert_eq!(d.time(), 1);
    }

    #[test]
    fn figure1_two_steps_r_matrix() {
        // Figure 1(b): after the reversed sequence (u2 step then u1 step),
        // R(2) = [[1/2, 1/4, 0], [1/2, 3/4, 0], [0, 0, 1]].
        let g = generators::path(3).unwrap();
        let mut d = DiffusionProcess::new(&g, 0.5).unwrap();
        d.apply(&StepRecord::Node {
            node: 1,
            sample: vec![0],
        });
        d.apply(&StepRecord::Node {
            node: 0,
            sample: vec![1],
        });
        let r = d.r_matrix();
        let expected = DenseMatrix::from_rows(&[
            vec![0.5, 0.25, 0.0],
            vec![0.5, 0.75, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert!(r.max_abs_diff(&expected) < 1e-15, "R(2) =\n{r}");
        // W(2) = ξᵀ(0)·R(2) = [6,8,9]·R = [7, 7.5, 9] = ξᵀ(2) from Fig 1(a).
        let w = d.cost(&[6.0, 8.0, 9.0]);
        assert!(od_linalg::vector::max_abs_diff(&w, &[7.0, 7.5, 9.0]) < 1e-15);
    }

    #[test]
    fn mass_is_conserved() {
        let g = generators::petersen();
        let mut d = DiffusionProcess::new(&g, 0.3).unwrap();
        // A few arbitrary valid spreads.
        let records = [
            StepRecord::Node {
                node: 0,
                sample: vec![1, 4],
            },
            StepRecord::Node {
                node: 5,
                sample: vec![7, 8],
            },
            StepRecord::Edge { tail: 2, head: 3 },
            StepRecord::Noop,
        ];
        for r in &records {
            d.apply(r);
        }
        assert_eq!(d.time(), 4);
        for total in d.commodity_totals() {
            assert!((total - 1.0).abs() < 1e-12, "commodity mass {total}");
        }
    }

    #[test]
    fn edge_record_is_k1_node_record() {
        let g = generators::cycle(5).unwrap();
        let mut a = DiffusionProcess::new(&g, 0.25).unwrap();
        let mut b = DiffusionProcess::new(&g, 0.25).unwrap();
        a.apply(&StepRecord::Edge { tail: 2, head: 3 });
        b.apply(&StepRecord::Node {
            node: 2,
            sample: vec![3],
        });
        assert!(a.r_matrix().max_abs_diff(b.r_matrix()) < 1e-15);
    }

    #[test]
    #[should_panic(expected = "non-edge")]
    fn rejects_invalid_record() {
        let g = generators::path(4).unwrap();
        let mut d = DiffusionProcess::new(&g, 0.5).unwrap();
        d.apply(&StepRecord::Node {
            node: 0,
            sample: vec![3],
        });
    }

    use od_graph::Graph;
}
