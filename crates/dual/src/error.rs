use std::error::Error;
use std::fmt;

/// Errors raised by the dual-process constructors.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DualError {
    /// The `Q`-chain analysis (§5.3, Lemma 5.7) applies to regular graphs.
    NotRegular,
    /// The graph must be connected for the chains to be irreducible.
    Disconnected,
    /// `α` must lie in `(0, 1)` for the stationary-distribution formulas
    /// (at `α = 0` the chain loses aperiodicity guarantees used in §5.3;
    /// at `α = 1` nothing moves).
    InvalidAlpha {
        /// The rejected value.
        alpha: f64,
    },
    /// `k` must satisfy `1 ≤ k ≤ d` on a `d`-regular graph.
    InvalidSampleSize {
        /// The rejected `k`.
        k: usize,
        /// The regular degree.
        d: usize,
    },
    /// Vector length mismatch against the node count.
    LengthMismatch {
        /// Supplied length.
        got: usize,
        /// Expected length (node count).
        expected: usize,
    },
}

impl fmt::Display for DualError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DualError::NotRegular => write!(f, "graph must be regular for the Q-chain analysis"),
            DualError::Disconnected => write!(f, "graph must be connected"),
            DualError::InvalidAlpha { alpha } => {
                write!(f, "alpha must lie in (0, 1), got {alpha}")
            }
            DualError::InvalidSampleSize { k, d } => {
                write!(f, "k must satisfy 1 <= k <= d = {d}, got {k}")
            }
            DualError::LengthMismatch { got, expected } => {
                write!(f, "vector of length {got}, expected {expected}")
            }
        }
    }
}

impl Error for DualError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn messages() {
        assert!(DualError::NotRegular.to_string().contains("regular"));
        assert!(DualError::InvalidAlpha { alpha: 0.0 }
            .to_string()
            .contains("(0, 1)"));
        assert!(DualError::InvalidSampleSize { k: 5, d: 3 }
            .to_string()
            .contains("d = 3"));
        assert!(DualError::LengthMismatch {
            got: 2,
            expected: 3
        }
        .to_string()
        .contains("expected 3"));
        assert!(DualError::Disconnected.to_string().contains("connected"));
    }
}
