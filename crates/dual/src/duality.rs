//! Executable duality couplings (Prop. 5.1 / Lemma 5.2) and the paper's
//! worked examples (Figures 1 and 4).
//!
//! The coupling: fix a selection sequence `χ = (χ(1), …, χ(T))`. Run the
//! Averaging Process forward on `χ` and the Diffusion Process on the
//! reversed sequence `χ^R`. Then `W(T) = ξᵀ(T)` — not just in
//! distribution, but **exactly**, step count for step count. This module
//! turns that proof device into a checkable function.

use crate::diffusion::DiffusionProcess;
use crate::error::DualError;
use od_core::{EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess, StepRecord};
use od_graph::Graph;
use od_linalg::{vector, DenseMatrix};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Result of a duality verification run.
#[derive(Debug, Clone)]
pub struct DualityCheck {
    /// Final averaging-process values `ξ(T)`.
    pub xi_final: Vec<f64>,
    /// Diffusion cost `W(T)` computed on the reversed sequence.
    pub w_final: Vec<f64>,
    /// `max_u |ξ_u(T) − W⁽ᵘ⁾(T)|` — zero (to rounding) iff the duality
    /// holds.
    pub max_abs_error: f64,
    /// Number of steps `T`.
    pub steps: usize,
}

/// Runs the NodeModel for `steps` steps on `graph` with seed `seed`,
/// records the selection sequence, replays it reversed through the
/// Diffusion Process, and compares `W(T)` against `ξᵀ(T)` (Lemma 5.2).
///
/// # Errors
///
/// Propagates construction errors from either process.
pub fn verify_node_duality(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    steps: usize,
    seed: u64,
) -> Result<DualityCheck, DualError> {
    let params = NodeModelParams::new(alpha, k).map_err(|_| DualError::InvalidAlpha { alpha })?;
    let mut model = NodeModel::new(graph, xi0.to_vec(), params).map_err(map_core_err)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<StepRecord> = (0..steps).map(|_| model.step_recorded(&mut rng)).collect();
    finish_duality(graph, alpha, xi0, model.state().values().to_vec(), &records)
}

/// Same coupling for the EdgeModel (the `k = 1` diffusion applies).
///
/// # Errors
///
/// Propagates construction errors from either process.
pub fn verify_edge_duality(
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    steps: usize,
    seed: u64,
) -> Result<DualityCheck, DualError> {
    let params = EdgeModelParams::new(alpha).map_err(|_| DualError::InvalidAlpha { alpha })?;
    let mut model = EdgeModel::new(graph, xi0.to_vec(), params).map_err(map_core_err)?;
    let mut rng = StdRng::seed_from_u64(seed);
    let records: Vec<StepRecord> = (0..steps).map(|_| model.step_recorded(&mut rng)).collect();
    finish_duality(graph, alpha, xi0, model.state().values().to_vec(), &records)
}

fn finish_duality(
    graph: &Graph,
    alpha: f64,
    xi0: &[f64],
    xi_final: Vec<f64>,
    records: &[StepRecord],
) -> Result<DualityCheck, DualError> {
    let mut diffusion = DiffusionProcess::new(graph, alpha)?;
    diffusion.apply_reversed(records);
    let w_final = diffusion.cost(xi0);
    let max_abs_error = vector::max_abs_diff(&xi_final, &w_final);
    Ok(DualityCheck {
        xi_final,
        w_final,
        max_abs_error,
        steps: records.len(),
    })
}

fn map_core_err(err: od_core::CoreError) -> DualError {
    match err {
        od_core::CoreError::Disconnected => DualError::Disconnected,
        od_core::CoreError::InvalidAlpha { alpha } => DualError::InvalidAlpha { alpha },
        od_core::CoreError::InvalidSampleSize { k, d_min } => {
            DualError::InvalidSampleSize { k, d: d_min }
        }
        od_core::CoreError::LengthMismatch { values, nodes } => DualError::LengthMismatch {
            got: values,
            expected: nodes,
        },
        // `CoreError` is non-exhaustive; anything else means invalid input.
        _ => DualError::LengthMismatch {
            got: 0,
            expected: 0,
        },
    }
}

/// A reproduced worked example (Figure 1 or Figure 4).
#[derive(Debug, Clone)]
pub struct FigureReproduction {
    /// Human-readable label.
    pub label: &'static str,
    /// Initial values `ξ(0)`.
    pub xi0: Vec<f64>,
    /// Computed `ξ(T)` from the Averaging Process.
    pub xi_final: Vec<f64>,
    /// The paper's expected `ξ(T)`.
    pub expected: Vec<f64>,
    /// Diffusion cost `W(T)` from the reversed replay.
    pub w_final: Vec<f64>,
    /// The final diffusion matrix `R(T)`.
    pub r_final: DenseMatrix,
    /// `max(|ξ−expected|, |W−expected|)`.
    pub max_abs_error: f64,
}

fn reproduce_figure(
    label: &'static str,
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: Vec<f64>,
    records: Vec<StepRecord>,
    expected: Vec<f64>,
) -> FigureReproduction {
    let params = NodeModelParams::new(alpha, k).expect("figure parameters are valid");
    let mut model =
        NodeModel::new(graph, xi0.clone(), params).expect("figure graph/values are valid");
    for record in &records {
        model.apply(record);
    }
    let xi_final = model.state().values().to_vec();

    let mut diffusion = DiffusionProcess::new(graph, alpha).expect("figure graph is valid");
    diffusion.apply_reversed(&records);
    let w_final = diffusion.cost(&xi0);
    let r_final = diffusion.r_matrix().clone();

    let err_xi = vector::max_abs_diff(&xi_final, &expected);
    let err_w = vector::max_abs_diff(&w_final, &expected);
    FigureReproduction {
        label,
        xi0,
        xi_final,
        expected,
        w_final,
        r_final,
        max_abs_error: err_xi.max(err_w),
    }
}

/// Reproduces **Figure 1** (`k = 1`, `α = 1/2`): path `u1–u2–u3` with
/// `ξ(0) = (6, 8, 9)`; step 1 updates `u1` from `u2`, step 2 updates `u2`
/// from `u1`; expected `ξ(2) = (7, 15/2, 9)` and `W(2) = ξᵀ(2)`.
pub fn figure1() -> FigureReproduction {
    let graph = od_graph::generators::path(3).expect("3-path is valid");
    reproduce_figure(
        "Figure 1 (k=1, alpha=1/2)",
        &graph,
        0.5,
        1,
        vec![6.0, 8.0, 9.0],
        vec![
            StepRecord::Node {
                node: 0,
                sample: vec![1],
            },
            StepRecord::Node {
                node: 1,
                sample: vec![0],
            },
        ],
        vec![7.0, 7.5, 9.0],
    )
}

/// Reproduces **Figure 4** (`k = 2`, `α = 1/2`): triangle with
/// `ξ(0) = (6, 8, 9)`; step 1 updates `u1` from `{u2, u3}`, step 2 updates
/// `u2` from `{u1, u3}`; expected `ξ(2) = (29/4, 129/16, 9)`.
pub fn figure4() -> FigureReproduction {
    let graph = od_graph::generators::complete(3).expect("triangle is valid");
    reproduce_figure(
        "Figure 4 (k=2, alpha=1/2)",
        &graph,
        0.5,
        2,
        vec![6.0, 8.0, 9.0],
        vec![
            StepRecord::Node {
                node: 0,
                sample: vec![1, 2],
            },
            StepRecord::Node {
                node: 1,
                sample: vec![0, 2],
            },
        ],
        vec![29.0 / 4.0, 129.0 / 16.0, 9.0],
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_graph::generators;

    #[test]
    fn figure1_exact() {
        let fig = figure1();
        assert!(
            fig.max_abs_error < 1e-15,
            "Figure 1 mismatch: xi={:?}, W={:?}, expected={:?}",
            fig.xi_final,
            fig.w_final,
            fig.expected
        );
        // R(2) matches the matrix printed in the paper.
        let expected_r = DenseMatrix::from_rows(&[
            vec![0.5, 0.25, 0.0],
            vec![0.5, 0.75, 0.0],
            vec![0.0, 0.0, 1.0],
        ]);
        assert!(fig.r_final.max_abs_diff(&expected_r) < 1e-15);
    }

    #[test]
    fn figure4_exact() {
        let fig = figure4();
        assert!(
            fig.max_abs_error < 1e-15,
            "Figure 4 mismatch: xi={:?}, W={:?}",
            fig.xi_final,
            fig.w_final
        );
        // R(2) from the paper: [[1/2,1/8,0],[1/4,9/16,0],[1/4,5/16,1]].
        let expected_r = DenseMatrix::from_rows(&[
            vec![0.5, 0.125, 0.0],
            vec![0.25, 9.0 / 16.0, 0.0],
            vec![0.25, 5.0 / 16.0, 1.0],
        ]);
        assert!(
            fig.r_final.max_abs_diff(&expected_r) < 1e-15,
            "R(2) =\n{}",
            fig.r_final
        );
    }

    #[test]
    fn node_duality_holds_on_random_runs() {
        let graphs: Vec<(Graph, usize)> = vec![
            (generators::cycle(7).unwrap(), 2),
            (generators::petersen(), 3),
            (generators::complete(6).unwrap(), 4),
            (generators::hypercube(3).unwrap(), 1),
        ];
        for (g, k) in &graphs {
            let xi0: Vec<f64> = (0..g.n()).map(|i| (i as f64) * 1.7 - 3.0).collect();
            for seed in 0..3 {
                let check = verify_node_duality(g, 0.5, *k, &xi0, 200, seed).expect("valid setup");
                assert!(
                    check.max_abs_error < 1e-10,
                    "duality error {} on n={} k={k} seed={seed}",
                    check.max_abs_error,
                    g.n()
                );
            }
        }
    }

    #[test]
    fn edge_duality_holds_including_irregular_graphs() {
        let graphs = vec![
            generators::star(8).unwrap(),
            generators::barbell(4).unwrap(),
            generators::path(6).unwrap(),
        ];
        for g in &graphs {
            let xi0: Vec<f64> = (0..g.n()).map(|i| (i * i) as f64 * 0.3).collect();
            let check = verify_edge_duality(g, 0.25, &xi0, 500, 7).expect("valid setup");
            assert!(
                check.max_abs_error < 1e-10,
                "edge duality error {} on n={}",
                check.max_abs_error,
                g.n()
            );
        }
    }

    #[test]
    fn duality_with_lazy_noops() {
        // Noop records must replay as time-only steps on both sides.
        use od_core::Laziness;
        let g = generators::cycle(6).unwrap();
        let xi0: Vec<f64> = (0..6).map(f64::from).collect();
        let params = NodeModelParams::new(0.5, 1)
            .unwrap()
            .with_laziness(Laziness::Lazy);
        let mut model = NodeModel::new(&g, xi0.clone(), params).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let records: Vec<StepRecord> = (0..300).map(|_| model.step_recorded(&mut rng)).collect();
        assert!(records.contains(&StepRecord::Noop));
        let mut diffusion = DiffusionProcess::new(&g, 0.5).unwrap();
        diffusion.apply_reversed(&records);
        let w = diffusion.cost(&xi0);
        let err = vector::max_abs_diff(model.state().values(), &w);
        assert!(err < 1e-10, "lazy duality error {err}");
    }

    #[test]
    fn forward_forward_breaks_duality() {
        // Running the diffusion on the *unreversed* sequence should NOT
        // reproduce ξ(T) in general (the paper stresses reversal is
        // crucial).
        let g = generators::petersen();
        let xi0: Vec<f64> = (0..10).map(|i| f64::from(i) * 2.0).collect();
        let params = NodeModelParams::new(0.5, 2).unwrap();
        let mut model = NodeModel::new(&g, xi0.clone(), params).unwrap();
        let mut rng = StdRng::seed_from_u64(13);
        let records: Vec<StepRecord> = (0..100).map(|_| model.step_recorded(&mut rng)).collect();
        let mut diffusion = DiffusionProcess::new(&g, 0.5).unwrap();
        for r in &records {
            diffusion.apply(r); // forward, not reversed
        }
        let w = diffusion.cost(&xi0);
        let err = vector::max_abs_diff(model.state().values(), &w);
        assert!(err > 1e-6, "forward-forward should diverge, err = {err}");
    }

    use od_graph::Graph;
}
