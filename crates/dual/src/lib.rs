//! The dual machinery of *Distributed Averaging in Opinion Dynamics*
//! (PODC 2023), Section 5 — the paper's main technical novelty.
//!
//! The concentration result (Theorem 2.2(2)) is proved through a chain of
//! process identities, each implemented and testable here:
//!
//! ```text
//! Var(M(t))  ≈ Var(W(t))  ≈ Var(W̃(t))  ≈ Σ μ(u,v) ξ_u(0) ξ_v(0)
//!  Averaging   Diffusion     Random walks    Q-chain stationary (Lemma 5.7)
//!  (Lemma 5.2)  (Prop. 5.4)   (Lemma 5.5)
//! ```
//!
//! * [`DiffusionProcess`] — the time-reversed dual (§5.1): `n` commodities
//!   diffuse through the matrices `B(t)` of Eq. (4); running it on a
//!   reversed selection sequence reproduces the Averaging Process *exactly*
//!   (`W(T) = ξᵀ(T)`, Lemma 5.2).
//! * [`RandomWalkProcess`] — `n` correlated random walks driven by the same
//!   `B(t)` choices (§5.2).
//! * [`QChain`] — the joint chain of two correlated walks (§5.3) with exact
//!   transition probabilities (Eqs. 14–21), a numeric stationary
//!   distribution (power iteration over the implicit operator) and the
//!   closed form of Lemma 5.7.
//! * [`variance`] — Prop. 5.8's exact variance prediction for the
//!   convergence value `F`, plus the Θ-envelope of Theorem 2.2(2).
//! * [`duality`] — executable couplings, including the worked examples of
//!   Figure 1 (`k = 1`) and Figure 4 (`k = 2`).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod diffusion;
pub mod duality;
mod error;
mod qchain;
pub mod variance;
mod walks;

pub use diffusion::DiffusionProcess;
pub use error::DualError;
pub use qchain::{GeneralQChain, QChain, StateClass, StationaryClasses};
pub use walks::{moment_via_walks, MultiWalks, RandomWalkProcess, TwoWalks};
