use crate::error::DualError;
use od_core::StepRecord;
use od_graph::{Graph, NodeId};
use rand::{Rng, RngCore};

/// The Random Walk Process of §5.2: `n` correlated walks, walk `u`
/// starting at node `u`, all driven by the *same* selection sequence
/// (the transition matrices `B(t)` of the Diffusion Process).
///
/// When a record selects node `w` with sample `S`, every walk currently at
/// `w` independently moves to a uniform element of `S` with probability
/// `1 − α` (and stays put otherwise). Walks at other nodes do not move.
///
/// The cost of walk `u` at time `t` is `W̃⁽ᵘ⁾(t) = ξ_{position(u)}(0)`;
/// Lemma 5.3 states `E[W̃⁽ᵘ⁾(t) | χ] = W⁽ᵘ⁾(t)` (the diffusion cost), and
/// Prop. 5.4 equates the second moments.
#[derive(Debug, Clone)]
pub struct RandomWalkProcess<'g> {
    graph: &'g Graph,
    alpha: f64,
    positions: Vec<NodeId>,
    time: u64,
}

impl<'g> RandomWalkProcess<'g> {
    /// Creates `n` walks, walk `u` at node `u`.
    ///
    /// # Errors
    ///
    /// [`DualError::Disconnected`] or [`DualError::InvalidAlpha`]
    /// (`α ∉ [0, 1)`).
    pub fn new(graph: &'g Graph, alpha: f64) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 2 {
            return Err(DualError::Disconnected);
        }
        if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        Ok(RandomWalkProcess {
            graph,
            alpha,
            positions: (0..graph.n() as NodeId).collect(),
            time: 0,
        })
    }

    /// Current position of walk `u`.
    pub fn position(&self, u: NodeId) -> NodeId {
        self.positions[u as usize]
    }

    /// All positions, indexed by walk.
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// Steps taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// Cost of walk `u` under initial values `xi0`:
    /// `W̃⁽ᵘ⁾(t) = ξ_{X_u(t)}(0)`.
    ///
    /// # Panics
    ///
    /// Panics if `xi0.len() != n`.
    pub fn cost(&self, xi0: &[f64], u: NodeId) -> f64 {
        assert_eq!(xi0.len(), self.graph.n(), "xi0 length mismatch");
        xi0[self.positions[u as usize] as usize]
    }

    /// Applies one selection record to all walks. The randomness (whether
    /// each walk at the selected node moves, and where inside the sample)
    /// comes from `rng`.
    ///
    /// # Panics
    ///
    /// Panics if the record references a non-edge.
    pub fn apply(&mut self, record: &StepRecord, rng: &mut dyn RngCore) {
        match record {
            StepRecord::Noop => {}
            StepRecord::Node { node, sample } => {
                assert!(
                    sample.iter().all(|&v| self.graph.has_edge(*node, v)),
                    "record references a non-edge at node {node}"
                );
                self.move_walks(*node, sample, rng);
            }
            StepRecord::Edge { tail, head } => {
                assert!(
                    self.graph.has_edge(*tail, *head),
                    "record references non-edge ({tail}, {head})"
                );
                self.move_walks(*tail, std::slice::from_ref(head), rng);
            }
        }
        self.time += 1;
    }

    fn move_walks(&mut self, selected: NodeId, sample: &[NodeId], rng: &mut dyn RngCore) {
        for pos in self.positions.iter_mut() {
            if *pos == selected && rng.gen_bool(1.0 - self.alpha) {
                *pos = sample[rng.gen_range(0..sample.len())];
            }
        }
    }
}

/// Two correlated walks evolving under the NodeModel's own randomness —
/// exactly the `Q`-chain of §5.3 (state `(X(t), Y(t)) ∈ V × V`). Used to
/// validate the closed-form stationary distribution empirically.
#[derive(Debug, Clone)]
pub struct TwoWalks<'g> {
    graph: &'g Graph,
    alpha: f64,
    k: usize,
    x: NodeId,
    y: NodeId,
    sample: Vec<NodeId>,
    time: u64,
}

impl<'g> TwoWalks<'g> {
    /// Creates the pair at starting positions `(x, y)`.
    ///
    /// # Errors
    ///
    /// [`DualError::Disconnected`], [`DualError::InvalidAlpha`]
    /// (`α ∉ [0, 1)`), or [`DualError::InvalidSampleSize`] if `k` exceeds
    /// the minimum degree.
    pub fn new(
        graph: &'g Graph,
        alpha: f64,
        k: usize,
        x: NodeId,
        y: NodeId,
    ) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 2 {
            return Err(DualError::Disconnected);
        }
        if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        let d_min = graph.min_degree();
        if k == 0 || k > d_min {
            return Err(DualError::InvalidSampleSize { k, d: d_min });
        }
        Ok(TwoWalks {
            graph,
            alpha,
            k,
            x,
            y,
            sample: Vec::with_capacity(k),
            time: 0,
        })
    }

    /// Current state `(X(t), Y(t))`.
    pub fn state(&self) -> (NodeId, NodeId) {
        (self.x, self.y)
    }

    /// Steps taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// One `Q`-chain step: select node `w` uniformly, sample `k` distinct
    /// neighbours; each walk at `w` moves independently w.p. `1 − α` to an
    /// independent uniform element of the (shared) sample.
    pub fn step(&mut self, rng: &mut dyn RngCore) {
        self.time += 1;
        let w = rng.gen_range(0..self.graph.n()) as NodeId;
        if self.x != w && self.y != w {
            return;
        }
        // Sample k distinct neighbours of w (partial Fisher-Yates on a
        // fresh index list; Q-chain experiments run on modest graphs).
        let neighbors = self.graph.neighbors(w);
        let d = neighbors.len();
        self.sample.clear();
        if self.k == d {
            self.sample.extend_from_slice(neighbors);
        } else {
            let mut idx: Vec<u32> = (0..d as u32).collect();
            for i in 0..self.k {
                let j = rng.gen_range(i..d);
                idx.swap(i, j);
                self.sample.push(neighbors[idx[i] as usize]);
            }
        }
        if self.x == w && rng.gen_bool(1.0 - self.alpha) {
            self.x = self.sample[rng.gen_range(0..self.sample.len())];
        }
        if self.y == w && rng.gen_bool(1.0 - self.alpha) {
            self.y = self.sample[rng.gen_range(0..self.sample.len())];
        }
    }
}

/// `M ≥ 2` correlated random walks under the NodeModel's own randomness —
/// the generalization the paper's §6 proposes for bounding **higher
/// moments** of the convergence value `F`.
///
/// The duality chain (Prop. 5.1 → Lemma 5.3 → Prop. 5.4) extends verbatim
/// to products of `M` walk costs: conditioned on the selection sequence,
/// the walks are independent, so
/// `E[Π_j W̃^{(u_j)}(T)] = E[Π_j W^{(u_j)}(T)] = E[Π_j ξ_{u_j}(T)]`.
/// Averaging over independent uniform starting nodes therefore estimates
/// `E[Avg(T)^M] → E[F^M]` once `T` exceeds the joint mixing time. The
/// HIGHER experiment cross-validates this against direct Monte Carlo over
/// full averaging runs.
#[derive(Debug, Clone)]
pub struct MultiWalks<'g> {
    graph: &'g Graph,
    alpha: f64,
    k: usize,
    positions: Vec<NodeId>,
    sample: Vec<NodeId>,
    time: u64,
}

impl<'g> MultiWalks<'g> {
    /// Creates `starts.len()` correlated walks at the given nodes.
    ///
    /// # Errors
    ///
    /// [`DualError::Disconnected`], [`DualError::InvalidAlpha`]
    /// (`α ∉ [0, 1)`), or [`DualError::InvalidSampleSize`].
    pub fn new(
        graph: &'g Graph,
        alpha: f64,
        k: usize,
        starts: Vec<NodeId>,
    ) -> Result<Self, DualError> {
        if !graph.is_connected() || graph.n() < 2 {
            return Err(DualError::Disconnected);
        }
        if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
            return Err(DualError::InvalidAlpha { alpha });
        }
        let d_min = graph.min_degree();
        if k == 0 || k > d_min {
            return Err(DualError::InvalidSampleSize { k, d: d_min });
        }
        if starts.iter().any(|&s| (s as usize) >= graph.n()) {
            return Err(DualError::LengthMismatch {
                got: starts.len(),
                expected: graph.n(),
            });
        }
        Ok(MultiWalks {
            graph,
            alpha,
            k,
            positions: starts,
            sample: Vec::with_capacity(k),
            time: 0,
        })
    }

    /// Current walk positions.
    pub fn positions(&self) -> &[NodeId] {
        &self.positions
    }

    /// Steps taken.
    pub fn time(&self) -> u64 {
        self.time
    }

    /// One NodeModel-coupled step: select a node `w` uniformly, draw one
    /// `k`-sample of its neighbours, and move every walk at `w`
    /// independently with probability `1 − α` to an independent uniform
    /// element of the shared sample.
    pub fn step(&mut self, rng: &mut dyn RngCore) {
        self.time += 1;
        let w = rng.gen_range(0..self.graph.n()) as NodeId;
        if !self.positions.contains(&w) {
            return;
        }
        let neighbors = self.graph.neighbors(w);
        let d = neighbors.len();
        self.sample.clear();
        if self.k == d {
            self.sample.extend_from_slice(neighbors);
        } else {
            let mut idx: Vec<u32> = (0..d as u32).collect();
            for i in 0..self.k {
                let j = rng.gen_range(i..d);
                idx.swap(i, j);
                self.sample.push(neighbors[idx[i] as usize]);
            }
        }
        for pos in self.positions.iter_mut() {
            if *pos == w && rng.gen_bool(1.0 - self.alpha) {
                *pos = self.sample[rng.gen_range(0..self.sample.len())];
            }
        }
    }

    /// Product of the walk costs `Π_j ξ₀[X_j(t)]` — one sample of the
    /// `M`-point correlation whose expectation is `E[Π_j ξ_{u_j}(T)]`.
    ///
    /// # Panics
    ///
    /// Panics if `xi0.len() != n`.
    pub fn cost_product(&self, xi0: &[f64]) -> f64 {
        assert_eq!(xi0.len(), self.graph.n(), "xi0 length mismatch");
        self.positions.iter().map(|&p| xi0[p as usize]).product()
    }
}

/// Estimates the `M`-th moment `E[F^M]` of the convergence value by the
/// §6 dual method: `trials` independent runs of `M` correlated walks from
/// uniform random starts, each run `steps` long (choose `steps` well past
/// the joint mixing time), averaging the cost products.
///
/// # Errors
///
/// Propagates [`MultiWalks::new`] errors.
// Triage(clippy::too_many_arguments): the eight parameters mirror the
// paper's estimator signature (graph, α, k, ξ⁰, M, steps, trials, rng);
// bundling them into a config struct is planned alongside the estimator
// API rework, not this bootstrap PR.
#[allow(clippy::too_many_arguments)]
pub fn moment_via_walks<R: RngCore>(
    graph: &Graph,
    alpha: f64,
    k: usize,
    xi0: &[f64],
    order: usize,
    steps: u64,
    trials: usize,
    rng: &mut R,
) -> Result<f64, DualError> {
    let n = graph.n();
    let mut total = 0.0;
    for _ in 0..trials {
        let starts: Vec<NodeId> = (0..order).map(|_| rng.gen_range(0..n) as NodeId).collect();
        let mut walks = MultiWalks::new(graph, alpha, k, starts)?;
        for _ in 0..steps {
            walks.step(rng);
        }
        total += walks.cost_product(xi0);
    }
    Ok(total / trials as f64)
}

#[cfg(test)]
mod tests {
    use super::*;
    use od_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn construction_validation() {
        let g = generators::cycle(5).unwrap();
        assert!(RandomWalkProcess::new(&g, 1.5).is_err());
        assert!(TwoWalks::new(&g, 0.5, 3, 0, 1).is_err()); // k > d_min = 2
        assert!(TwoWalks::new(&g, 0.5, 0, 0, 1).is_err());
    }

    #[test]
    fn walks_only_move_from_selected_node() {
        let g = generators::path(4).unwrap();
        let mut w = RandomWalkProcess::new(&g, 0.0).unwrap(); // always move
        let mut rng = StdRng::seed_from_u64(1);
        // Select node 1 with sample {2}: only walks at node 1 move, and
        // they must land on 2.
        w.apply(
            &StepRecord::Node {
                node: 1,
                sample: vec![2],
            },
            &mut rng,
        );
        assert_eq!(w.position(0), 0);
        assert_eq!(w.position(1), 2);
        assert_eq!(w.position(2), 2);
        assert_eq!(w.position(3), 3);
    }

    #[test]
    fn alpha_one_half_moves_about_half() {
        let g = generators::complete(3).unwrap();
        let mut rng = StdRng::seed_from_u64(2);
        let mut moved = 0u32;
        let trials = 20_000;
        for _ in 0..trials {
            let mut w = RandomWalkProcess::new(&g, 0.5).unwrap();
            w.apply(
                &StepRecord::Node {
                    node: 0,
                    sample: vec![1],
                },
                &mut rng,
            );
            if w.position(0) == 1 {
                moved += 1;
            }
        }
        let frac = moved as f64 / trials as f64;
        assert!((frac - 0.5).abs() < 0.02, "move fraction {frac}");
    }

    #[test]
    fn expected_position_matches_diffusion_load() {
        // Lemma 5.3: E[q̃(u)(t) | χ] = R(t) e(u). Empirically estimate the
        // walk distribution under a fixed record sequence and compare to
        // the diffusion load vector.
        use crate::DiffusionProcess;
        let g = generators::complete(4).unwrap();
        let records = [
            StepRecord::Node {
                node: 0,
                sample: vec![1, 2],
            },
            StepRecord::Node {
                node: 1,
                sample: vec![0, 3],
            },
            StepRecord::Node {
                node: 2,
                sample: vec![3, 0],
            },
        ];
        let mut diff = DiffusionProcess::new(&g, 0.5).unwrap();
        for r in &records {
            diff.apply(r);
        }
        let expected = diff.load(0); // distribution of walk 0

        let mut rng = StdRng::seed_from_u64(3);
        let trials = 200_000;
        let mut counts = [0u32; 4];
        for _ in 0..trials {
            let mut w = RandomWalkProcess::new(&g, 0.5).unwrap();
            for r in &records {
                w.apply(r, &mut rng);
            }
            counts[w.position(0) as usize] += 1;
        }
        for node in 0..4 {
            let frac = counts[node] as f64 / trials as f64;
            assert!(
                (frac - expected[node]).abs() < 0.01,
                "node {node}: empirical {frac} vs load {}",
                expected[node]
            );
        }
    }

    #[test]
    fn two_walks_stay_on_graph() {
        let g = generators::petersen();
        let mut tw = TwoWalks::new(&g, 0.5, 2, 0, 5).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        for _ in 0..10_000 {
            tw.step(&mut rng);
            let (x, y) = tw.state();
            assert!((x as usize) < 10 && (y as usize) < 10);
        }
        assert_eq!(tw.time(), 10_000);
    }

    #[test]
    fn multi_walks_validation_and_motion() {
        let g = generators::cycle(6).unwrap();
        assert!(MultiWalks::new(&g, 0.5, 1, vec![0, 9]).is_err()); // bad start
        assert!(MultiWalks::new(&g, 0.5, 3, vec![0, 1]).is_err()); // k > d_min
        let mut w = MultiWalks::new(&g, 0.0, 1, vec![2, 2, 2]).unwrap();
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..200 {
            w.step(&mut rng);
            for &p in w.positions() {
                assert!((p as usize) < 6);
            }
        }
        assert_eq!(w.time(), 200);
    }

    #[test]
    fn multi_walks_second_moment_matches_two_walks_theory() {
        // Sanity for the §6 extension: the M = 2 case must agree with the
        // Q-chain's stationary prediction E[F²] = Σ μ(u,v) ξ_u ξ_v.
        use crate::QChain;
        let g = generators::complete(6).unwrap();
        let xi0: Vec<f64> = (0..6).map(|i| f64::from(i) - 2.5).collect();
        let chain = QChain::new(&g, 0.5, 1).unwrap();
        let mu = chain.closed_form_vector();
        let mut predicted = 0.0;
        for u in 0..6u32 {
            for v in 0..6u32 {
                predicted += mu[chain.state_index(u, v)] * xi0[u as usize] * xi0[v as usize];
            }
        }
        let mut rng = StdRng::seed_from_u64(2);
        let estimated = moment_via_walks(&g, 0.5, 1, &xi0, 2, 2_000, 60_000, &mut rng).unwrap();
        assert!(
            (estimated - predicted).abs() < 0.08,
            "estimated {estimated} vs predicted {predicted}"
        );
    }

    #[test]
    fn cost_product_multiplies_positions() {
        let g = generators::path(4).unwrap();
        let w = MultiWalks::new(&g, 0.5, 1, vec![0, 2, 3]).unwrap();
        let xi0 = [2.0, 5.0, 3.0, 7.0];
        assert_eq!(w.cost_product(&xi0), 2.0 * 3.0 * 7.0);
    }

    #[test]
    fn two_walks_can_meet_and_separate() {
        let g = generators::complete(4).unwrap();
        let mut tw = TwoWalks::new(&g, 0.5, 2, 0, 1).unwrap();
        let mut rng = StdRng::seed_from_u64(5);
        let mut met = false;
        let mut separated = false;
        for _ in 0..10_000 {
            tw.step(&mut rng);
            let (x, y) = tw.state();
            if x == y {
                met = true;
            }
            if met && x != y {
                separated = true;
                break;
            }
        }
        assert!(met, "walks should meet on K4");
        assert!(
            separated,
            "walks should separate again (unlike coalescing walks)"
        );
    }
}
