//! Weighted-graph tiers: the weighted exact step kernel against its
//! unweighted twin, the synchronous CSR kernels at n up to 10^6, and the
//! CSR-vs-dense Friedkin–Johnsen gap that motivated retiring the dense
//! matrices.
//!
//! * `weighted/node_kernel_1024steps` — `StepKernel::step_many` with and
//!   without per-edge weights on the same torus; the delta is the cost
//!   of the weighted sample-mean aggregation.
//! * `weighted/sync_16rounds` — one `SyncKernel` round costs O(m); the
//!   16-round blocks here scale from n = 4096 to n = 10^6 (divide the
//!   median by 16 for ns/round).
//! * `weighted/fj_16rounds_n1024` — CSR vs the dense transition-matrix
//!   reference at a size the dense path can still hold (the dense row
//!   is O(n) per node per round; its matrix build is amortised over the
//!   16 rounds). The ratio is the speedup the CSR port buys before the
//!   dense path runs out of memory entirely.
//! * `weighted/scenario_fj` — the full scenario API (`model fj` +
//!   `weights uniform` + `stop fixed_point`) at n = 10^6, pinning that
//!   weighted specs run end to end at production scale.
//!
//! CI runs this target in smoke mode (`--sample-size 2`, with
//! `OD_BENCH_JSON=BENCH_weighted.json` mirroring medians); the committed
//! snapshot comes from a full run.

use criterion::{criterion_group, criterion_main, Criterion};
use od_baselines::dense_fj_fixed_point;
use od_bench::pm_one;
use od_core::{KernelSpec, NodeModelParams, StepKernel, SyncKernel, SyncModel};
use od_graph::{generators, Graph};
use od_sim::{ScenarioSpec, Simulation};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const STEPS_PER_ITER: u64 = 1024;
const ROUNDS_PER_ITER: u64 = 16;

/// Square torus with per-edge weights drawn uniformly from [0.5, 2).
fn weighted_torus(rows: usize, cols: usize, seed: u64) -> Graph {
    let mut g = generators::torus(rows, cols).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let weights: Vec<f64> = (0..g.m()).map(|_| 0.5 + 1.5 * rng.gen::<f64>()).collect();
    g.attach_weights(&weights).unwrap();
    g
}

fn scale_sizes() -> Vec<(&'static str, usize)> {
    vec![
        ("torus64x64/n4096", 64),
        ("torus256x256/n65536", 256),
        ("torus1000x1000/n1000000", 1000),
    ]
}

fn weighted_node_step_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted/node_kernel_1024steps");
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
    for (name, side) in scale_sizes() {
        let plain = generators::torus(side, side).unwrap();
        group.bench_function(format!("{name}/unweighted"), |b| {
            let mut kernel = StepKernel::new(&plain, pm_one(plain.n()), spec).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| kernel.step_many(STEPS_PER_ITER, &mut rng));
        });
        let weighted = weighted_torus(side, side, 2);
        group.bench_function(format!("{name}/weighted"), |b| {
            let mut kernel = StepKernel::new(&weighted, pm_one(weighted.n()), spec).unwrap();
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| kernel.step_many(STEPS_PER_ITER, &mut rng));
        });
    }
    group.finish();
}

fn sync_rounds(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted/sync_16rounds");
    for (name, side) in scale_sizes() {
        let g = weighted_torus(side, side, 3);
        for (model_name, model) in [
            ("degroot", SyncModel::DeGroot { lazy: 0.5 }),
            ("fj", SyncModel::FriedkinJohnsen { alpha: 0.2 }),
        ] {
            group.bench_function(format!("{name}/{model_name}"), |b| {
                let mut kernel = SyncKernel::new(&g, pm_one(g.n()), model).unwrap();
                b.iter(|| {
                    for _ in 0..ROUNDS_PER_ITER {
                        kernel.round();
                    }
                });
            });
        }
    }
    group.finish();
}

fn csr_vs_dense_fj(c: &mut Criterion) {
    let mut group = c.benchmark_group("weighted/fj_16rounds_n1024");
    let g = weighted_torus(32, 32, 4);
    let anchors = pm_one(g.n());
    group.bench_function("csr", |b| {
        b.iter(|| {
            let mut kernel = SyncKernel::new(
                &g,
                anchors.clone(),
                SyncModel::FriedkinJohnsen { alpha: 0.2 },
            )
            .unwrap();
            kernel.run(ROUNDS_PER_ITER, 0.0).unwrap()
        });
    });
    group.bench_function("dense", |b| {
        b.iter(|| dense_fj_fixed_point(&g, &anchors, 0.2, 0.0, ROUNDS_PER_ITER));
    });
    group.finish();
}

fn scenario_fj_fixed_point(c: &mut Criterion) {
    // The full pipeline — parse, weight attachment, dispatch to the
    // sync-rounds engine, fixed-point iteration — at production scale.
    let text = "scenario bench-weighted-fj\n\
                model fj alpha=0.2\n\
                graph torus rows=1000 cols=1000\n\
                weights uniform lo=0.5 hi=2 seed=5\n\
                init pm_one\n\
                stop fixed_point eps=0.000001 budget=10000\n";
    let spec = ScenarioSpec::parse(text).unwrap();
    let mut group = c.benchmark_group("weighted/scenario_fj");
    group.sample_size(10);
    group.bench_function("n1000000_fixed_point", |b| {
        b.iter(|| {
            let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
            assert!(report.trials[0].converged);
            report.trials[0].steps
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    weighted_node_step_many,
    sync_rounds,
    csr_vs_dense_fj,
    scenario_fj_fixed_point
);
criterion_main!(benches);
