//! RUNTIME: message-passing protocol overhead vs the state-vector kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{NodeModel, NodeModelParams, OpinionProcess};
use od_graph::generators;
use od_runtime::ProtocolNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn protocol_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/protocol_step");
    for (name, g, k) in [
        ("torus8x8/k1", generators::torus(8, 8).unwrap(), 1usize),
        ("torus8x8/k4", generators::torus(8, 8).unwrap(), 4),
        ("hypercube6/k3", generators::hypercube(6).unwrap(), 3),
    ] {
        group.bench_function(name, |b| {
            let mut net = ProtocolNetwork::new(&g, pm_one(g.n()), 0.5, k);
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| net.step(&mut rng));
        });
    }
    group.finish();
}

fn state_vector_step_reference(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/state_vector_reference");
    let g = generators::torus(8, 8).unwrap();
    for k in [1usize, 4] {
        let params = NodeModelParams::new(0.5, k).unwrap();
        group.bench_function(format!("torus8x8/k{k}"), |b| {
            let mut m = NodeModel::new(&g, pm_one(g.n()), params).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| m.step(&mut rng));
        });
    }
    group.finish();
}

fn replay_conformance(c: &mut Criterion) {
    let mut group = c.benchmark_group("runtime/replay");
    group.sample_size(20);
    let g = generators::petersen();
    let params = NodeModelParams::new(0.5, 2).unwrap();
    let mut source = NodeModel::new(&g, pm_one(10), params).unwrap();
    let mut rng = StdRng::seed_from_u64(3);
    let records: Vec<_> = (0..1_000).map(|_| source.step_recorded(&mut rng)).collect();
    group.bench_function("petersen/1000records", |b| {
        b.iter(|| {
            let mut net = ProtocolNetwork::new(&g, pm_one(10), 0.5, 2);
            net.apply_all(&records);
            net.stats().total_messages()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    protocol_step,
    state_vector_step_reference,
    replay_conformance
);
criterion_main!(benches);
