//! Per-trial workload of the variance experiments (T22-VAR / T24-VAR /
//! P58 / CE2): estimate one convergence value `F`, plus the analytic
//! predictor itself.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{estimate_convergence_value, NodeModel, NodeModelParams};
use od_dual::variance::predict_variance;
use od_dual::QChain;
use od_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn estimate_f_trial(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance/estimate_f");
    group.sample_size(10);
    for (name, g, k) in [
        ("complete16/k1", generators::complete(16).unwrap(), 1usize),
        ("cycle16/k1", generators::cycle(16).unwrap(), 1),
        ("hypercube4/k2", generators::hypercube(4).unwrap(), 2),
    ] {
        let params = NodeModelParams::new(0.5, k).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut m = NodeModel::new(&g, pm_one(g.n()), params).unwrap();
                let mut rng = StdRng::seed_from_u64(11);
                estimate_convergence_value(&mut m, &mut rng, 1e-10, u64::MAX).unwrap()
            });
        });
    }
    group.finish();
}

fn analytic_predictor(c: &mut Criterion) {
    let mut group = c.benchmark_group("variance/predictor");
    for (name, g, k) in [
        ("cycle64/k1", generators::cycle(64).unwrap(), 1usize),
        ("hypercube6/k3", generators::hypercube(6).unwrap(), 3),
    ] {
        let xi0 = pm_one(g.n());
        group.bench_function(name, |b| {
            b.iter(|| {
                let chain = QChain::new(&g, 0.5, k).unwrap();
                predict_variance(&chain, &xi0).unwrap()
            });
        });
    }
    group.finish();
}

criterion_group!(benches, estimate_f_trial, analytic_predictor);
criterion_main!(benches);
