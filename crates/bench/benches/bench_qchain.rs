//! Q-chain machinery (L57): closed-form evaluation, balance-equation
//! verification and the power-iteration stationary distribution.

use criterion::{criterion_group, criterion_main, Criterion};
use od_dual::QChain;
use od_graph::generators;

fn closed_form(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchain/closed_form");
    for (name, g, k) in [
        ("petersen/k2", generators::petersen(), 2usize),
        ("cycle32/k2", generators::cycle(32).unwrap(), 2),
        ("hypercube5/k3", generators::hypercube(5).unwrap(), 3),
    ] {
        group.bench_function(name, |b| {
            let chain = QChain::new(&g, 0.5, k).unwrap();
            b.iter(|| chain.closed_form_vector());
        });
    }
    group.finish();
}

fn balance_residual(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchain/balance_residual");
    for (name, g, k) in [
        ("petersen/k2", generators::petersen(), 2usize),
        ("cycle16/k2", generators::cycle(16).unwrap(), 2),
    ] {
        group.bench_function(name, |b| {
            let chain = QChain::new(&g, 0.5, k).unwrap();
            b.iter(|| chain.closed_form_balance_residual());
        });
    }
    group.finish();
}

fn stationary_numeric(c: &mut Criterion) {
    let mut group = c.benchmark_group("qchain/stationary_numeric");
    group.sample_size(10);
    for (name, g, k) in [
        ("petersen/k2", generators::petersen(), 2usize),
        ("cycle12/k1", generators::cycle(12).unwrap(), 1),
    ] {
        group.bench_function(name, |b| {
            let chain = QChain::new(&g, 0.5, k).unwrap();
            b.iter(|| chain.stationary_numeric(1e-12, 200_000));
        });
    }
    group.finish();
}

criterion_group!(benches, closed_form, balance_residual, stationary_numeric);
criterion_main!(benches);
