//! Spectral substrate: `λ₂(P)`, `λ₂(L)` and the dense Jacobi solver, which
//! gate every convergence-time prediction.

use criterion::{criterion_group, criterion_main, Criterion};
use od_graph::generators;
use od_linalg::{eigen, CsrMatrix};

fn lazy_walk_lambda2(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral/lazy_walk_lambda2");
    group.sample_size(10);
    for (name, g) in [
        ("cycle64", generators::cycle(64).unwrap()),
        ("torus8x8", generators::torus(8, 8).unwrap()),
        ("hypercube8", generators::hypercube(8).unwrap()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| eigen::lazy_walk_spectrum(&g, 1e-10, 2_000_000).lambda2);
        });
    }
    group.finish();
}

fn laplacian_lambda2(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral/laplacian_lambda2");
    group.sample_size(10);
    for (name, g) in [
        ("cycle64", generators::cycle(64).unwrap()),
        ("star128", generators::star(128).unwrap()),
        ("barbell16", generators::barbell(16).unwrap()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| eigen::laplacian_spectrum(&g, 1e-10, 2_000_000).lambda2);
        });
    }
    group.finish();
}

fn jacobi_dense(c: &mut Criterion) {
    let mut group = c.benchmark_group("spectral/jacobi");
    group.sample_size(10);
    for (name, g) in [
        ("petersen", generators::petersen()),
        ("cycle32", generators::cycle(32).unwrap()),
        ("hypercube6", generators::hypercube(6).unwrap()),
    ] {
        let a = CsrMatrix::adjacency(&g).to_dense();
        group.bench_function(name, |b| {
            b.iter(|| eigen::jacobi_eigen(&a, 1e-10));
        });
    }
    group.finish();
}

criterion_group!(benches, lazy_walk_lambda2, laplacian_lambda2, jacobi_dense);
criterion_main!(benches);
