//! `od-serve` daemon throughput: scenario submissions per second through
//! the full socket protocol, against an in-process daemon bound to an
//! ephemeral port.
//!
//! Three regimes:
//!
//! * `submit_cached_sweep` — the same sweep resubmitted over and over;
//!   every cell is a memo-cache hit, so this prices the protocol +
//!   replay path (parse, key lookup, row streaming) with zero
//!   simulation work.
//! * `submit_cached_concurrent8` — eight client threads hammering the
//!   cached sweep at once; prices lock contention on the cache and the
//!   per-connection threads under concurrent load.
//! * `submit_distinct_specs` — every submission is a never-seen spec
//!   (the master seed advances each iteration), so each one schedules
//!   real cells on the worker pool; prices end-to-end execution
//!   throughput including scheduling.
//!
//! Runs as a CI smoke (`--sample-size 2`) with
//! `OD_BENCH_JSON=BENCH_serve.json` mirroring medians; the committed
//! snapshot comes from a full local run.

use criterion::{criterion_group, criterion_main, Criterion};
use od_serve::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::sync::atomic::{AtomicU64, Ordering};

/// A 4-cell CRN sweep over a shared 8-cycle; every cell converges in
/// well under a millisecond.
const SWEEP: &str = "scenario bench-serve\n\
    model node alpha=0.5 k=1 lazy=false\n\
    graph cycle n=8\n\
    init pm_one\n\
    replicas 4\n\
    seed 7\n\
    stop converge eps=0.000001 rule=exact potential=pi budget=1000000\n\
    threads 1\n\
    sweep k = 1,2\n\
    sweep eps = 0.001,0.000001\n";

/// The same workload with a caller-chosen master seed — a distinct memo
/// key per seed.
fn sweep_with_seed(seed: u64) -> String {
    SWEEP.replace("seed 7\n", &format!("seed {seed}\n"))
}

/// One full `SUBMIT` round trip; returns the response byte count (and
/// panics on an `ERR` response, so a broken daemon can't score).
fn submit(addr: &str, scn: &str) -> usize {
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut writer = stream;
    write!(writer, "SUBMIT {}\n{scn}", scn.len()).expect("send");
    let mut bytes = 0;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("read");
        assert!(!line.starts_with("ERR"), "daemon error: {line}");
        bytes += line.len();
        if line.starts_with("DONE") {
            return bytes;
        }
    }
}

fn cached(c: &mut Criterion) {
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    submit(&addr, SWEEP); // warm: all 4 cells into the memo cache
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("submit_cached_sweep/4cells", |b| {
        b.iter(|| submit(&addr, SWEEP));
    });
    group.bench_function("submit_cached_concurrent8/4cells", |b| {
        b.iter(|| {
            let clients: Vec<_> = (0..8)
                .map(|_| {
                    let addr = addr.clone();
                    std::thread::spawn(move || submit(&addr, SWEEP))
                })
                .collect();
            clients
                .into_iter()
                .map(|t| t.join().expect("client thread"))
                .sum::<usize>()
        });
    });
    group.finish();
}

fn distinct(c: &mut Criterion) {
    let server = Server::start(ServerConfig {
        workers: 4,
        ..ServerConfig::default()
    })
    .unwrap();
    let addr = server.addr().to_string();
    // Advancing the master seed makes every submission a cache miss with
    // 4 fresh cells to schedule; starting above any warmed seed keeps
    // iterations independent of sample count.
    let next_seed = AtomicU64::new(1_000);
    let mut group = c.benchmark_group("serve");
    group.sample_size(10);
    group.bench_function("submit_distinct_specs/4cells", |b| {
        b.iter(|| {
            let seed = next_seed.fetch_add(1, Ordering::Relaxed);
            submit(&addr, &sweep_with_seed(seed))
        });
    });
    group.finish();
}

criterion_group!(benches, cached, distinct);
criterion_main!(benches);
