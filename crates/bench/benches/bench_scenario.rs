//! Scenario-API dispatch overhead: the declarative `Simulation` path vs
//! the direct engine call it routes to, on the same workload with the
//! same seeds.
//!
//! The scenario rows parse + validate a spec, derive per-trial seeds and
//! dispatch; the direct rows call the engine by hand. The results are
//! equivalence-gated bit-identical (`tests/batch_equivalence.rs`), so
//! any wall-clock gap is pure dispatch overhead — the contract is that
//! there is no measurable one (dispatch is O(spec size), the sweep is
//! O(R · T(ε) · step)).
//!
//! A third pair compares the retirement-aware streaming window against
//! the fixed-batch engine at a capacity that actually forces re-filling.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{
    run_converge_streaming, ConvergeConfig, KernelSpec, NodeModelParams, ReplicaBatch, StopRule,
};
use od_graph::generators;
use od_sim::{run_sweep, ScenarioSpec, Simulation, SweepSpec};
use od_stats::SeedSequence;

const SPEC_TEXT: &str = "scenario bench-dispatch\n\
    model node alpha=0.5 k=2 lazy=false\n\
    graph hypercube dim=12\n\
    init pm_one\n\
    replicas 16\n\
    seed 1\n\
    stop converge eps=0.000001 rule=block potential=pi budget=1000000000\n\
    threads 1\n";

fn scenario_seeds(seed: u64, r: usize) -> Vec<u64> {
    let seq = SeedSequence::new(seed);
    (0..r as u64).map(|i| seq.seed(i)).collect()
}

/// Direct engine call: the exact workload the scenario dispatches to.
fn direct(c: &mut Criterion) {
    let g = generators::hypercube(12).unwrap();
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
    let seeds = scenario_seeds(1, 16);
    let mut group = c.benchmark_group("scenario/hypercube12");
    group.sample_size(5);
    group.bench_function("direct_streaming16/n4096/k2", |b| {
        b.iter(|| {
            let reports = run_converge_streaming(
                &g,
                spec,
                &pm_one(g.n()),
                &seeds,
                16,
                ConvergeConfig::new(1e-6, 1_000_000_000).with_threads(1),
            )
            .unwrap();
            assert!(reports.iter().all(|r| r.converged));
            reports.iter().map(|r| r.steps).sum::<u64>()
        });
    });
    group.finish();
}

/// The same workload through parse + validate + dispatch.
fn scenario(c: &mut Criterion) {
    let mut group = c.benchmark_group("scenario/hypercube12");
    group.sample_size(5);
    group.bench_function("scenario_dispatch16/n4096/k2", |b| {
        b.iter(|| {
            let spec = ScenarioSpec::parse(SPEC_TEXT).unwrap();
            let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
            assert_eq!(report.converged_count(), 16);
            report.trials.iter().map(|t| t.steps).sum::<u64>()
        });
    });
    group.finish();
}

/// Streaming window (capacity 4 « R = 16, so slots re-fill as trials
/// retire) vs the all-at-once fixed batch on the same sweep.
fn streaming_vs_fixed(c: &mut Criterion) {
    let g = generators::hypercube(12).unwrap();
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
    let seeds = scenario_seeds(1, 16);
    let mut group = c.benchmark_group("scenario/hypercube12");
    group.sample_size(5);
    group.bench_function("streaming_window4/n4096/k2", |b| {
        b.iter(|| {
            let reports = run_converge_streaming(
                &g,
                spec,
                &pm_one(g.n()),
                &seeds,
                4,
                ConvergeConfig::new(1e-6, 1_000_000_000).with_threads(1),
            )
            .unwrap();
            reports.iter().map(|r| r.steps).sum::<u64>()
        });
    });
    group.bench_function("fixed_batch16/n4096/k2", |b| {
        b.iter(|| {
            let mut batch = ReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds).unwrap();
            let reports = batch
                .run_until_converged(
                    ConvergeConfig::new(1e-6, 1_000_000_000)
                        .with_stop(StopRule::Block)
                        .with_threads(1),
                )
                .unwrap();
            reports.iter().map(|r| r.steps).sum::<u64>()
        });
    });
    group.finish();
}

/// Sweep structure exploitation: an 8-cell ε × k grid on one shared
/// graph through `run_sweep` (the CSR is built once) vs the same cells
/// assembled naively with `from_spec` (the CSR is rebuilt per cell).
/// The per-cell results are identical — the gap is pure graph-build
/// amortisation, which grows with cell count and graph size.
fn sweep_shared_graph(c: &mut Criterion) {
    const SWEEP_TEXT: &str = "scenario bench-sweep\n\
        model node alpha=0.5 k=2 lazy=false\n\
        graph hypercube dim=12\n\
        init pm_one\n\
        replicas 4\n\
        seed 1\n\
        stop converge eps=0.001 rule=block potential=pi budget=1000000000\n\
        threads 1\n\
        sweep k = 2,3\n\
        sweep eps = 0.01,0.001,0.0001,0.00001\n";
    let sweep = SweepSpec::parse(SWEEP_TEXT).unwrap();
    let mut group = c.benchmark_group("scenario/sweep8cells");
    group.sample_size(5);
    group.bench_function("shared_graph/n4096", |b| {
        b.iter(|| {
            let report = run_sweep(&sweep).unwrap();
            assert_eq!(report.distinct_graphs, 1);
            report
                .cells
                .iter()
                .flat_map(|c| c.report.trials.iter().map(|t| t.steps))
                .sum::<u64>()
        });
    });
    group.bench_function("rebuilt_per_cell/n4096", |b| {
        b.iter(|| {
            sweep
                .cells()
                .unwrap()
                .iter()
                .map(|cell| {
                    // from_spec builds the CSR from the spec every time.
                    let report = Simulation::from_spec(&cell.spec).unwrap().run().unwrap();
                    report.trials.iter().map(|t| t.steps).sum::<u64>()
                })
                .sum::<u64>()
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    direct,
    scenario,
    streaming_vs_fixed,
    sweep_shared_graph
);
criterion_main!(benches);
