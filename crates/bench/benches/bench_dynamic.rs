//! Dynamic-graph kernels at production scale: evolving topologies under
//! the batched step kernels, n up to 10^6.
//!
//! Three questions, one group each:
//!
//! * `dynamic/node_epoch1024steps` — what does an epoch (1024 NodeModel
//!   steps + churn + commit) cost vs the static kernel's 1024 steps?
//!   `swaps0` isolates the epoch-machinery overhead (must be ≈ the static
//!   `batch/node_kernel_1024steps` numbers); `swaps16` adds 16
//!   degree-preserving edge swaps committed via the in-place patch path.
//! * `dynamic/edge_epoch1024steps` — the same for the EdgeModel.
//! * `dynamic/churn_commit` — churn + commit alone: 64 swaps patched in
//!   place, a 64-rewire epoch committed via the shifted patch (bulk-copied
//!   untouched ranges + rebuilt touched rows), and `set_edges`
//!   replacements, which now **diff against the committed CSR**: an
//!   identical list is a merge sweep + no-op commit, a one-chord delta a
//!   merge sweep + two-row patch (the historical wholesale O(n + m)
//!   rebuild is gone).
//!
//! CI runs this target in smoke mode (`--sample-size 2`); the tracked
//! medians in `CHANGES.md` come from full runs.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{DynamicStepKernel, EdgeModelParams, KernelSpec, NodeModelParams};
use od_graph::{generators, ChurnModel, DynamicGraph, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Steps advanced per epoch (= per benchmark iteration).
const STEPS_PER_EPOCH: u64 = 1024;

/// Square tori at n = 4096, 65536 and 1_000_000 (same scale set as
/// `bench_batch`, so static vs dynamic numbers compare line for line).
fn scale_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus64x64/n4096", generators::torus(64, 64).unwrap()),
        ("torus256x256/n65536", generators::torus(256, 256).unwrap()),
        (
            "torus1000x1000/n1000000",
            generators::torus(1000, 1000).unwrap(),
        ),
    ]
}

fn dynamic_node_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/node_epoch1024steps");
    for (name, g) in scale_graphs() {
        for swaps in [0usize, 16] {
            let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
            group.bench_function(format!("{name}/swaps{swaps}"), |b| {
                let mut kernel = DynamicStepKernel::new(
                    DynamicGraph::new(g.clone()),
                    pm_one(g.n()),
                    spec,
                    ChurnModel::edge_swap(swaps),
                    17,
                )
                .unwrap();
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| kernel.step_epoch(STEPS_PER_EPOCH, &mut rng).unwrap());
            });
        }
    }
    group.finish();
}

fn dynamic_edge_epochs(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/edge_epoch1024steps");
    for (name, g) in scale_graphs() {
        let spec = KernelSpec::Edge(EdgeModelParams::new(0.5).unwrap());
        group.bench_function(format!("{name}/swaps16"), |b| {
            let mut kernel = DynamicStepKernel::new(
                DynamicGraph::new(g.clone()),
                pm_one(g.n()),
                spec,
                ChurnModel::edge_swap(16),
                18,
            )
            .unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| kernel.step_epoch(STEPS_PER_EPOCH, &mut rng).unwrap());
        });
    }
    group.finish();
}

fn churn_commit_only(c: &mut Criterion) {
    let mut group = c.benchmark_group("dynamic/churn_commit");
    for (name, g) in scale_graphs() {
        // Degree-preserving swaps: in-place CSR patch, no rebuild.
        group.bench_function(format!("{name}/swap64_patch"), |b| {
            let mut dg = DynamicGraph::new(g.clone());
            let churn = ChurnModel::edge_swap(64);
            let mut rng = StdRng::seed_from_u64(3);
            let mut epoch = 0u64;
            b.iter(|| {
                churn.apply(&mut dg, epoch, &mut rng).unwrap();
                epoch += 1;
                dg.commit()
            });
        });
        // Degree-changing rewires: shifted patch into the back buffer —
        // untouched CSR ranges are bulk-copied with offsets moved by the
        // running degree delta, only touched rows are rebuilt
        // (O(Δ + m/cacheline); historically a full O(n + m)
        // scatter-and-sort rebuild, ≈ 50 ms at n = 10^6). One commit
        // before `iter` warms the double buffer, so the rows measure the
        // allocation-free steady state.
        group.bench_function(format!("{name}/rewire64_shift"), |b| {
            let mut dg = DynamicGraph::new(g.clone());
            let churn = ChurnModel::rewire(64, 1);
            let mut rng = StdRng::seed_from_u64(4);
            let mut epoch = 0u64;
            churn.apply(&mut dg, epoch, &mut rng).unwrap();
            epoch += 1;
            dg.commit();
            b.iter(|| {
                churn.apply(&mut dg, epoch, &mut rng).unwrap();
                epoch += 1;
                dg.commit()
            });
        });
        // Wholesale edge-set replacement (set_edges) with an *identical*
        // list: since `set_edges` diffs against the committed CSR, this
        // is the merge sweep plus a no-op commit. The row is bounded by
        // the O(m) staging (validate + dedup + sort of the handed-in
        // list), which also dominated the historical unconditional
        // rebuild — the diff's win is the commit route, not this sweep.
        group.bench_function(format!("{name}/set_edges_identical"), |b| {
            let mut dg = DynamicGraph::new(g.clone());
            let edges: Vec<(u32, u32)> = dg.edges().to_vec();
            dg.set_edges(&edges).unwrap();
            dg.commit();
            b.iter(|| {
                dg.set_edges(&edges).unwrap();
                dg.commit()
            });
        });
        // set_edges with a small real delta: the diff stages only the
        // changed edges, so each iteration pays the merge sweep plus a
        // two-row patch commit instead of a wholesale rebuild. Toggling
        // one long-range chord per iteration keeps the graph valid (the
        // chord never coincides with a torus edge) and the work steady.
        group.bench_function(format!("{name}/set_edges_delta1"), |b| {
            let mut dg = DynamicGraph::new(g.clone());
            let base: Vec<(u32, u32)> = dg.edges().to_vec();
            let n = dg.graph().n() as u32;
            let mut with_chord = base.clone();
            with_chord.push((0, n / 2 + 1));
            let mut flip = 0u32;
            b.iter(|| {
                let edges = if flip.is_multiple_of(2) {
                    &with_chord
                } else {
                    &base
                };
                flip += 1;
                dg.set_edges(edges).unwrap();
                dg.commit()
            });
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    dynamic_node_epochs,
    dynamic_edge_epochs,
    churn_commit_only
);
criterion_main!(benches);
