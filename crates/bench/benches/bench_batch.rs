//! Batched step kernels at production scale: `StepKernel::step_many` on
//! graphs up to n = 10^6 and `ReplicaBatch` structure-of-arrays sweeps.
//!
//! Each `step_many` benchmark advances a fixed block of steps per
//! iteration (the reported time divides by `STEPS_PER_ITER` to give
//! ns/step); the kernels allocate nothing per step, so large-n numbers
//! are pure compute + memory traffic. CI runs this target in smoke mode
//! (`--sample-size 2`, with `OD_BENCH_JSON=BENCH_batch.json` mirroring
//! medians) so the million-node path compiles and executes on every
//! push; the tracked medians in `CHANGES.md` come from full runs.
//!
//! With `--features lane` the `batch/lane8_*` groups add the lane-major
//! SIMD tier: one iteration advances **8 lanes** by `STEPS_PER_ITER`
//! shared steps, so divide the reported time by `8 × STEPS_PER_ITER` for
//! the per-replica ns/step that compares against the exact-tier rows.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{EdgeModelParams, KernelSpec, NodeModelParams, ReplicaBatch, StepKernel, VoterBatch};
use od_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Steps advanced per benchmark iteration; divide reported medians by this
/// to get ns/step.
const STEPS_PER_ITER: u64 = 1024;

/// Large-n graph set: square tori at n = 4096, 65536 and 1_000_000 (4 ≈
/// d-regular, so NodeModel k ≤ 4 is valid everywhere and memory stays
/// proportional to n).
fn scale_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("torus64x64/n4096", generators::torus(64, 64).unwrap()),
        ("torus256x256/n65536", generators::torus(256, 256).unwrap()),
        (
            "torus1000x1000/n1000000",
            generators::torus(1000, 1000).unwrap(),
        ),
    ]
}

fn kernel_node_step_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/node_kernel_1024steps");
    for (name, g) in scale_graphs() {
        for k in [1usize, 4] {
            let spec = KernelSpec::Node(NodeModelParams::new(0.5, k).unwrap());
            group.bench_function(format!("{name}/k{k}"), |b| {
                let mut kernel = StepKernel::new(&g, pm_one(g.n()), spec).unwrap();
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| kernel.step_many(STEPS_PER_ITER, &mut rng));
            });
        }
    }
    group.finish();
}

fn kernel_edge_step_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/edge_kernel_1024steps");
    for (name, g) in scale_graphs() {
        let spec = KernelSpec::Edge(EdgeModelParams::new(0.5).unwrap());
        group.bench_function(name, |b| {
            let mut kernel = StepKernel::new(&g, pm_one(g.n()), spec).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| kernel.step_many(STEPS_PER_ITER, &mut rng));
        });
    }
    group.finish();
}

fn replica_batch_step_many(c: &mut Criterion) {
    // 8 replicas sharing one CSR instance vs 8 sequential kernel runs is
    // the layout the Monte-Carlo sweeps use; per-replica per-step cost
    // should match the single-kernel numbers above.
    let mut group = c.benchmark_group("batch/replica8_1024steps");
    let seeds: Vec<u64> = (0..8).collect();
    for (name, g) in [
        ("torus64x64/n4096", generators::torus(64, 64).unwrap()),
        ("torus256x256/n65536", generators::torus(256, 256).unwrap()),
    ] {
        let spec = KernelSpec::Node(NodeModelParams::new(0.5, 2).unwrap());
        group.bench_function(name, |b| {
            let mut batch = ReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds).unwrap();
            b.iter(|| batch.step_many(STEPS_PER_ITER));
        });
    }
    group.finish();
}

fn voter_batch_step_many(c: &mut Criterion) {
    let mut group = c.benchmark_group("batch/voter8_1024steps");
    let seeds: Vec<u64> = (0..8).collect();
    let g = generators::torus(64, 64).unwrap();
    let opinions: Vec<u32> = (0..g.n() as u32).collect();
    group.bench_function("torus64x64/n4096", |b| {
        let mut batch = VoterBatch::new(&g, &opinions, &seeds).unwrap();
        b.iter(|| batch.step_many(STEPS_PER_ITER));
    });
    group.finish();
}

/// The lane tier on the same scale set: 8 lanes per iteration, so the
/// per-replica step cost is `time / (8 × STEPS_PER_ITER)`. The k = 4
/// rows hit the full-row-mean arm on the 4-regular tori (no per-lane
/// neighbour draws); k = 1 pays one counter draw per lane per step.
#[cfg(feature = "lane")]
fn lane_batch_step_many(c: &mut Criterion) {
    use od_core::LaneReplicaBatch;
    const LANES: usize = 8;
    let seeds: Vec<u64> = (0..LANES as u64).collect();
    let mut group = c.benchmark_group("batch/lane8_node_kernel_1024steps");
    for (name, g) in scale_graphs() {
        for k in [1usize, 4] {
            let spec = KernelSpec::Node(NodeModelParams::new(0.5, k).unwrap());
            group.bench_function(format!("{name}/k{k}"), |b| {
                let mut batch = LaneReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds).unwrap();
                b.iter(|| batch.step_many(STEPS_PER_ITER));
            });
        }
    }
    group.finish();
    let mut group = c.benchmark_group("batch/lane8_edge_kernel_1024steps");
    for (name, g) in scale_graphs() {
        let spec = KernelSpec::Edge(EdgeModelParams::new(0.5).unwrap());
        group.bench_function(name, |b| {
            let mut batch = LaneReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds).unwrap();
            b.iter(|| batch.step_many(STEPS_PER_ITER));
        });
    }
    group.finish();
}

#[cfg(not(feature = "lane"))]
fn lane_batch_step_many(_c: &mut Criterion) {}

criterion_group!(
    benches,
    kernel_node_step_many,
    kernel_edge_step_many,
    replica_batch_step_many,
    voter_batch_step_many,
    lane_batch_step_many
);
criterion_main!(benches);
