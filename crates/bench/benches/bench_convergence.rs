//! Full ε-convergence runs — the workload behind T22-CONV / T22-K /
//! T24-CONV / PB2 / CMP-VOTER.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{
    run_until_converged, EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, VoterModel,
};
use od_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn node_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence/node");
    group.sample_size(10);
    for (name, g) in [
        ("complete32", generators::complete(32).unwrap()),
        ("hypercube5", generators::hypercube(5).unwrap()),
        ("torus6x6", generators::torus(6, 6).unwrap()),
    ] {
        for k in [1usize, 2] {
            let params = NodeModelParams::new(0.5, k).unwrap();
            group.bench_function(format!("{name}/k{k}"), |b| {
                b.iter(|| {
                    let mut m = NodeModel::new(&g, pm_one(g.n()), params).unwrap();
                    let mut rng = StdRng::seed_from_u64(7);
                    run_until_converged(&mut m, &mut rng, 1e-9, u64::MAX)
                });
            });
        }
    }
    group.finish();
}

fn edge_convergence(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence/edge");
    group.sample_size(10);
    for (name, g) in [
        ("complete32", generators::complete(32).unwrap()),
        ("star32", generators::star(32).unwrap()),
        ("barbell8", generators::barbell(8).unwrap()),
    ] {
        let params = EdgeModelParams::new(0.5).unwrap();
        group.bench_function(name, |b| {
            b.iter(|| {
                let mut m = EdgeModel::new(&g, pm_one(g.n()), params).unwrap();
                let mut rng = StdRng::seed_from_u64(8);
                run_until_converged(&mut m, &mut rng, 1e-9, u64::MAX)
            });
        });
    }
    group.finish();
}

fn voter_consensus(c: &mut Criterion) {
    let mut group = c.benchmark_group("convergence/voter");
    group.sample_size(10);
    for (name, g) in [
        ("complete32", generators::complete(32).unwrap()),
        ("cycle24", generators::cycle(24).unwrap()),
    ] {
        group.bench_function(name, |b| {
            b.iter(|| {
                let opinions: Vec<u32> = (0..g.n() as u32).collect();
                let mut v = VoterModel::new(&g, opinions).unwrap();
                let mut rng = StdRng::seed_from_u64(9);
                v.run_to_consensus(&mut rng, u64::MAX)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, node_convergence, edge_convergence, voter_consensus);
criterion_main!(benches);
