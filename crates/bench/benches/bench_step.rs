//! Step kernels: one asynchronous update of each process (the unit of the
//! paper's time axis). Covers the hot path behind L41 / PB1 / PD1 / EQUIV.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use od_bench::{bench_graphs, pm_one};
use od_core::{
    EdgeModel, EdgeModelParams, NodeModel, NodeModelParams, OpinionProcess, StepRecord, VoterModel,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn node_model_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("step/node_model");
    for (name, g) in bench_graphs() {
        for k in [1usize, 2, 4] {
            if k > g.min_degree() {
                continue;
            }
            let params = NodeModelParams::new(0.5, k).unwrap();
            group.bench_function(format!("{name}/k{k}"), |b| {
                let mut model = NodeModel::new(&g, pm_one(g.n()), params).unwrap();
                let mut rng = StdRng::seed_from_u64(1);
                b.iter(|| model.step(&mut rng));
            });
        }
    }
    group.finish();
}

fn edge_model_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("step/edge_model");
    for (name, g) in bench_graphs() {
        let params = EdgeModelParams::new(0.5).unwrap();
        group.bench_function(name, |b| {
            let mut model = EdgeModel::new(&g, pm_one(g.n()), params).unwrap();
            let mut rng = StdRng::seed_from_u64(2);
            b.iter(|| model.step(&mut rng));
        });
    }
    group.finish();
}

fn voter_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("step/voter");
    for (name, g) in bench_graphs() {
        group.bench_function(name, |b| {
            b.iter_batched(
                || {
                    let opinions: Vec<u32> = (0..g.n() as u32).collect();
                    (
                        VoterModel::new(&g, opinions).unwrap(),
                        StdRng::seed_from_u64(3),
                    )
                },
                |(mut v, mut rng)| {
                    for _ in 0..64 {
                        v.step(&mut rng);
                    }
                },
                BatchSize::SmallInput,
            );
        });
    }
    group.finish();
}

fn recorded_steps(c: &mut Criterion) {
    // The duality experiments pay for record allocation; measure the
    // overhead vs the plain step, for both the allocating API and the
    // buffer-reusing `step_recorded_into` (the CHANGES.md target is
    // overhead below 1.5x).
    let mut group = c.benchmark_group("step/recorded");
    let (name, g) = &bench_graphs()[1];
    let params = NodeModelParams::new(0.5, 2).unwrap();
    group.bench_function(format!("{name}/k2"), |b| {
        let mut model = NodeModel::new(g, pm_one(g.n()), params).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        b.iter(|| model.step_recorded(&mut rng));
    });
    group.bench_function(format!("{name}/k2/into"), |b| {
        let mut model = NodeModel::new(g, pm_one(g.n()), params).unwrap();
        let mut rng = StdRng::seed_from_u64(4);
        let mut record = StepRecord::Noop;
        b.iter(|| model.step_recorded_into(&mut rng, &mut record));
    });
    group.finish();
}

criterion_group!(
    benches,
    node_model_steps,
    edge_model_steps,
    voter_steps,
    recorded_steps
);
criterion_main!(benches);
