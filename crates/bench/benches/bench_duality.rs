//! Duality machinery (FIG1 / FIG4 / DUAL): figure reproductions and the
//! record + reversed-replay pipeline.

use criterion::{criterion_group, criterion_main, Criterion};
use od_core::{NodeModel, NodeModelParams, OpinionProcess, StepRecord};
use od_dual::duality;
use od_dual::DiffusionProcess;
use od_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn figures(c: &mut Criterion) {
    let mut group = c.benchmark_group("duality/figures");
    group.bench_function("figure1", |b| b.iter(duality::figure1));
    group.bench_function("figure4", |b| b.iter(duality::figure4));
    group.finish();
}

fn verify_pipeline(c: &mut Criterion) {
    let mut group = c.benchmark_group("duality/verify");
    group.sample_size(20);
    for steps in [100usize, 1_000] {
        group.bench_function(format!("petersen/{steps}steps"), |b| {
            let g = generators::petersen();
            let xi0: Vec<f64> = (0..10).map(f64::from).collect();
            b.iter(|| duality::verify_node_duality(&g, 0.5, 2, &xi0, steps, 3).unwrap());
        });
    }
    group.finish();
}

fn diffusion_replay(c: &mut Criterion) {
    // Isolate the diffusion side: applying records to the dense R matrix.
    let mut group = c.benchmark_group("duality/diffusion_replay");
    let g = generators::torus(8, 8).unwrap();
    let xi0: Vec<f64> = (0..64).map(f64::from).collect();
    let params = NodeModelParams::new(0.5, 2).unwrap();
    let mut model = NodeModel::new(&g, xi0, params).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let records: Vec<StepRecord> = (0..1_000).map(|_| model.step_recorded(&mut rng)).collect();
    group.sample_size(20);
    group.bench_function("torus8x8/1000records", |b| {
        b.iter(|| {
            let mut d = DiffusionProcess::new(&g, 0.5).unwrap();
            d.apply_reversed(&records);
            d.r_matrix().sum()
        });
    });
    group.finish();
}

criterion_group!(benches, figures, verify_pipeline, diffusion_replay);
criterion_main!(benches);
