//! CMP-BASE: baseline protocol kernels next to the paper's models.

use criterion::{criterion_group, criterion_main, Criterion};
use od_baselines::{DeGroot, DiffusionBalancer, HegselmannKrause, PairwiseGossip, PushSum};
use od_bench::pm_one;
use od_graph::generators;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn baseline_steps(c: &mut Criterion) {
    let g = generators::torus(8, 8).unwrap();
    let n = g.n();

    let mut group = c.benchmark_group("baselines/step");
    group.bench_function("pairwise_gossip", |b| {
        let mut p = PairwiseGossip::new(&g, pm_one(n));
        let mut rng = StdRng::seed_from_u64(1);
        b.iter(|| p.step(&mut rng));
    });
    group.bench_function("push_sum", |b| {
        let mut p = PushSum::new(&g, pm_one(n));
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| p.step(&mut rng));
    });
    group.bench_function("degroot_round", |b| {
        let mut p = DeGroot::new(&g, pm_one(n));
        b.iter(|| p.step());
    });
    group.bench_function("diffusion_round", |b| {
        let mut p = DiffusionBalancer::new(&g, pm_one(n));
        b.iter(|| p.step());
    });
    group.bench_function("hegselmann_krause_round", |b| {
        let opinions: Vec<f64> = (0..n).map(|i| i as f64 / n as f64).collect();
        let mut p = HegselmannKrause::new(&g, opinions, 0.3);
        b.iter(|| p.step());
    });
    group.finish();
}

fn baseline_full_runs(c: &mut Criterion) {
    let g = generators::torus(6, 6).unwrap();
    let n = g.n();
    let mut group = c.benchmark_group("baselines/to_convergence");
    group.sample_size(10);
    group.bench_function("pairwise_gossip", |b| {
        b.iter(|| {
            let mut p = PairwiseGossip::new(&g, pm_one(n));
            let mut rng = StdRng::seed_from_u64(3);
            p.run(&mut rng, 1e-6, u64::MAX)
        });
    });
    group.bench_function("push_sum", |b| {
        b.iter(|| {
            let mut p = PushSum::new(&g, pm_one(n));
            let mut rng = StdRng::seed_from_u64(4);
            p.run(&mut rng, 1e-6, u64::MAX)
        });
    });
    group.bench_function("degroot", |b| {
        b.iter(|| {
            let mut p = DeGroot::new(&g, pm_one(n));
            p.run(1e-6, u64::MAX)
        });
    });
    group.finish();
}

criterion_group!(benches, baseline_steps, baseline_full_runs);
criterion_main!(benches);
