//! Batched convergence sweeps vs sequential scalar drivers — the workload
//! behind every `T(ε)` / `Var(F)` Monte-Carlo estimate.
//!
//! The headline comparison: `ReplicaBatch::run_until_converged` at
//! n = 65536 with R = 8 replicas against 8 sequential scalar
//! `run_until_converged` runs (same seeds; the batched engine's
//! trajectories and stopping times are equivalence-gated against exactly
//! that scalar reference, so this is a pure performance comparison).
//! Additional rows scale R up to 64 (early retirement + compaction pays
//! off when stopping times spread) and n up to 10^6.
//!
//! Every row re-runs construction + full convergence per iteration, so
//! scalar and batched rows pay identical setup. CI runs this target in
//! smoke mode with `OD_BENCH_JSON=BENCH_converge.json`, emitting
//! machine-readable medians alongside the `CHANGES.md` table.

use criterion::{criterion_group, criterion_main, Criterion};
use od_bench::pm_one;
use od_core::{
    run_until_converged, ConvergeConfig, KernelSpec, NodeModel, NodeModelParams, ReplicaBatch,
    StopRule, VoterBatch, VoterModel,
};
use od_graph::{generators, Graph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn seeds(r: usize) -> Vec<u64> {
    (1..=r as u64).collect()
}

/// 8 sequential scalar `run_until_converged` runs — the reference cost the
/// batched engine must beat.
fn scalar_sequential(c: &mut Criterion, group_name: &str, g: &Graph, k: usize, eps: f64, r: usize) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(3);
    let params = NodeModelParams::new(0.5, k).unwrap();
    group.bench_function(format!("scalar{r}_sequential/n{}/k{k}", g.n()), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for seed in seeds(r) {
                let mut m = NodeModel::new(g, pm_one(g.n()), params).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let report = run_until_converged(&mut m, &mut rng, eps, u64::MAX);
                assert!(report.converged);
                total += report.steps;
            }
            total
        });
    });
    group.finish();
}

/// The batched engine on the same scenario, one row per configuration.
fn batched(
    c: &mut Criterion,
    group_name: &str,
    g: &Graph,
    k: usize,
    r: usize,
    label: &str,
    config_fn: impl Fn() -> ConvergeConfig,
) {
    let mut group = c.benchmark_group(group_name);
    group.sample_size(3);
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, k).unwrap());
    group.bench_function(format!("batched{r}_{label}/n{}/k{k}", g.n()), |b| {
        b.iter(|| {
            let mut batch = ReplicaBatch::new(g, spec, &pm_one(g.n()), &seeds(r)).unwrap();
            let reports = batch.run_until_converged(config_fn()).unwrap();
            assert!(reports.iter().all(|report| report.converged));
            reports.iter().map(|report| report.steps).sum::<u64>()
        });
    });
    group.finish();
}

/// Headline: n = 65536, R = 8 — scalar sequential vs batched block rule,
/// batched exact (scalar-identical stopping), and the threaded path.
fn converge_65536(c: &mut Criterion) {
    let g = generators::hypercube(16).unwrap();
    let (k, eps, r) = (2usize, 1e-6, 8usize);
    scalar_sequential(c, "converge/hypercube16", &g, k, eps, r);
    batched(c, "converge/hypercube16", &g, k, r, "block", || {
        ConvergeConfig::new(eps, u64::MAX).with_threads(1)
    });
    batched(c, "converge/hypercube16", &g, k, r, "exact", || {
        ConvergeConfig::new(eps, u64::MAX)
            .with_stop(StopRule::Exact)
            .with_threads(1)
    });
    batched(
        c,
        "converge/hypercube16",
        &g,
        k,
        r,
        "block_threads8",
        || ConvergeConfig::new(eps, u64::MAX).with_threads(8),
    );
}

/// Wide batch: R = 64 — the regime where early retirement + compaction
/// matter (stopping times spread, the tail no longer pins the whole
/// batch).
fn converge_r64(c: &mut Criterion) {
    let g = generators::hypercube(12).unwrap();
    let (k, eps, r) = (2usize, 1e-8, 64usize);
    scalar_sequential(c, "converge/hypercube12", &g, k, eps, r);
    batched(c, "converge/hypercube12", &g, k, r, "block", || {
        ConvergeConfig::new(eps, u64::MAX).with_threads(1)
    });
}

/// Million-node row: the engine at n = 2^20 with a coarse threshold so
/// the row stays bench-sized; exercises retirement and the SoA layout at
/// memory-bound scale.
fn converge_million(c: &mut Criterion) {
    let g = generators::hypercube(20).unwrap();
    let mut group = c.benchmark_group("converge/hypercube20");
    group.sample_size(2);
    let (k, eps, r) = (2usize, 1e-1, 4usize);
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, k).unwrap());
    group.bench_function(format!("batched{r}_block/n{}/k{k}", g.n()), |b| {
        b.iter(|| {
            let mut batch = ReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds(r)).unwrap();
            let reports = batch
                .run_until_converged(ConvergeConfig::new(eps, u64::MAX).with_threads(1))
                .unwrap();
            assert!(reports.iter().all(|report| report.converged));
        });
    });
    group.finish();
}

/// Voter sibling: R = 64 consensus sweeps, batched (O(1) incremental
/// consensus checks + retirement) vs 64 sequential scalar runs.
fn converge_voter(c: &mut Criterion) {
    let g = generators::torus(32, 32).unwrap();
    let r = 64usize;
    let opinions: Vec<u32> = (0..g.n() as u32).map(|i| i % 4).collect();
    let mut group = c.benchmark_group("converge/voter_torus32x32");
    group.sample_size(3);
    group.bench_function(format!("scalar{r}_sequential/n{}", g.n()), |b| {
        b.iter(|| {
            let mut total = 0u64;
            for seed in seeds(r) {
                let mut m = VoterModel::new(&g, opinions.clone()).unwrap();
                let mut rng = StdRng::seed_from_u64(seed);
                let report = m.run_to_consensus(&mut rng, u64::MAX);
                assert!(report.winner.is_some());
                total += report.steps;
            }
            total
        });
    });
    group.bench_function(format!("batched{r}/n{}", g.n()), |b| {
        b.iter(|| {
            let mut batch = VoterBatch::new(&g, &opinions, &seeds(r)).unwrap();
            let reports = batch.run_to_consensus(u64::MAX, 0, 1);
            assert!(reports.iter().all(|report| report.winner.is_some()));
            reports.iter().map(|report| report.steps).sum::<u64>()
        });
    });
    group.finish();
}

/// Lane-tier sibling of the headline row: 8 lanes driven to the same ε
/// under the shared schedule (statistically — not bit — comparable with
/// the scalar/batched rows above; converged lanes freeze rather than
/// retire, so this row's total work is `R · max_r T_r`).
#[cfg(feature = "lane")]
fn converge_lane(c: &mut Criterion) {
    use od_core::LaneReplicaBatch;
    let g = generators::hypercube(16).unwrap();
    let (k, eps, r) = (2usize, 1e-6, 8usize);
    let spec = KernelSpec::Node(NodeModelParams::new(0.5, k).unwrap());
    let mut group = c.benchmark_group("converge/hypercube16");
    group.sample_size(3);
    group.bench_function(format!("lane{r}_block/n{}/k{k}", g.n()), |b| {
        b.iter(|| {
            let mut batch = LaneReplicaBatch::new(&g, spec, &pm_one(g.n()), &seeds(r)).unwrap();
            let reports = batch.run_until_converged(eps, u64::MAX, 0).unwrap();
            assert!(reports.iter().all(|report| report.converged));
            reports.iter().map(|report| report.steps).sum::<u64>()
        });
    });
    group.finish();
}

#[cfg(not(feature = "lane"))]
fn converge_lane(_c: &mut Criterion) {}

criterion_group!(
    benches,
    converge_65536,
    converge_r64,
    converge_million,
    converge_voter,
    converge_lane
);
criterion_main!(benches);
