//! Shared fixtures for the Criterion benchmarks.
//!
//! Bench groups map to the experiment index of `DESIGN.md` §4:
//!
//! | bench target        | experiments covered            |
//! |---------------------|--------------------------------|
//! | `bench_step`        | L41, PB1, PD1, EQUIV (step kernels) |
//! | `bench_batch`       | batched `StepKernel`/`ReplicaBatch` at n up to 10^6 |
//! | `bench_convergence` | T22-CONV, T22-K, T24-CONV, PB2, CMP-VOTER |
//! | `bench_converge`    | batched convergence engine (`run_until_converged` with retirement) vs sequential scalar runs, n up to 10^6, R up to 64 |
//! | `bench_variance`    | T22-VAR, T24-VAR, P58, CE2 (per-trial workload) |
//! | `bench_qchain`      | L57 (closed form, balance, power iteration) |
//! | `bench_duality`     | FIG1, FIG4, DUAL (record + reversed replay) |
//! | `bench_spectral`    | spectral substrate behind all convergence predictions |
//! | `bench_runtime`     | RUNTIME (message-passing overhead) |
//! | `bench_baselines`   | CMP-BASE (baseline step kernels) |

use od_graph::{generators, Graph};

/// Standard benchmark graph set: one representative per family used in the
/// experiments.
pub fn bench_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("cycle64", generators::cycle(64).unwrap()),
        ("torus8x8", generators::torus(8, 8).unwrap()),
        ("hypercube6", generators::hypercube(6).unwrap()),
        ("complete64", generators::complete(64).unwrap()),
    ]
}

/// Balanced ±1 initial values.
pub fn pm_one(n: usize) -> Vec<f64> {
    (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect()
}
