//! Sweep scenarios: one `.scn` file naming a whole grid of cells, run
//! with common random numbers.
//!
//! A [`ScenarioSpec`] names exactly one cell of the paper's experiment
//! space; the tables the paper actually prints (convergence time vs
//! churn rate, `k`, `n`, ε — T22-CONV, DYN-CHURN) are *grids* of such
//! cells. [`SweepSpec`] extends the text format with
//!
//! ```text
//! sweep <param> = v1,v2,...
//! ```
//!
//! lines over a base spec. Crossed axes (`graph`, `n`, `k`, `eps`,
//! `replicas`, `churn`) multiply into the cell lattice (the *last*
//! sweep line varies fastest, odometer order); the zipped axes (`seed`,
//! `churn_seed`) must match the crossed product in length and assign
//! one value per cell — the spelling for legacy per-cell seeding.
//!
//! Two pieces of structure are exploited when a sweep runs
//! ([`run_sweep`]):
//!
//! * **Shared graphs** — cells with an identical resolved [`GraphSpec`]
//!   share one CSR build (`Simulation::from_spec_with_graph`).
//! * **Common random numbers** — without a `sweep seed` axis every cell
//!   keeps the base master seed, so trial `i` of every cell draws the
//!   same randomness and cell deltas are CRN-paired: the paired-t
//!   contrast (`od_stats::paired_t_ci`) cancels the shared Monte-Carlo
//!   noise and its CI is strictly tighter than independent seeding
//!   whenever cells are positively correlated (gated in
//!   `tests/sweep_prop.rs`).
//!
//! Like the rest of the text format, `parse` / `Display` round-trip
//! exactly (property-gated in `tests/sweep_prop.rs`).

use std::fmt;

use od_graph::Graph;
use od_stats::{paired_t_ci, Contrast};

use crate::sim::{Simulation, SimulationReport};
use crate::spec::{
    parse_graph_tokens, ChurnModelSpec, GraphSpec, ModelSpec, ScenarioSpec, SimError, StopSpec,
};

/// Hard cap on the number of cells a sweep may expand to — a grid past
/// this size is a spec bug, not an experiment.
pub const MAX_CELLS: usize = 4096;

/// One `sweep <param> = v1,v2,...` line: the parameter it varies and
/// the value list, in file order.
#[derive(Debug, Clone, PartialEq)]
pub enum SweepAxis {
    /// Crossed: the topology. Values are graph descriptors — the
    /// `graph` line's tokens with `:` for spaces (`cycle:n=16`).
    Graph(Vec<GraphSpec>),
    /// Crossed: the size parameter `n` of families that have one
    /// (cycle, path, complete, star, gnp, gnm, random_regular,
    /// watts_strogatz, barabasi_albert).
    N(Vec<usize>),
    /// Crossed: the node model's neighbour sample size `k`.
    K(Vec<usize>),
    /// Crossed: the convergence threshold ε (`stop converge` only).
    Eps(Vec<f64>),
    /// Crossed: the replica count.
    Replicas(Vec<usize>),
    /// Crossed: the churn intensity — `swaps` for `edge_swap`,
    /// `rewires` for `rewire`.
    Churn(Vec<usize>),
    /// Zipped: per-cell master seeds (one per cell, cells in expansion
    /// order). Opts the sweep *out* of common random numbers — the
    /// spelling for reproducing legacy independently-seeded tables.
    Seed(Vec<u64>),
    /// Zipped: per-cell churn seeds (one per cell).
    ChurnSeed(Vec<u64>),
}

impl SweepAxis {
    /// The axis' `sweep` key.
    pub fn key(&self) -> &'static str {
        match self {
            SweepAxis::Graph(_) => "graph",
            SweepAxis::N(_) => "n",
            SweepAxis::K(_) => "k",
            SweepAxis::Eps(_) => "eps",
            SweepAxis::Replicas(_) => "replicas",
            SweepAxis::Churn(_) => "churn",
            SweepAxis::Seed(_) => "seed",
            SweepAxis::ChurnSeed(_) => "churn_seed",
        }
    }

    /// Number of values on this axis.
    pub fn len(&self) -> usize {
        match self {
            SweepAxis::Graph(v) => v.len(),
            SweepAxis::N(v) | SweepAxis::K(v) | SweepAxis::Replicas(v) | SweepAxis::Churn(v) => {
                v.len()
            }
            SweepAxis::Eps(v) => v.len(),
            SweepAxis::Seed(v) | SweepAxis::ChurnSeed(v) => v.len(),
        }
    }

    /// Whether the axis has no values (never true for a valid sweep).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Whether this axis multiplies into the cell lattice (vs assigning
    /// one value per already-expanded cell).
    pub fn is_crossed(&self) -> bool {
        !matches!(self, SweepAxis::Seed(_) | SweepAxis::ChurnSeed(_))
    }

    /// The `i`-th value as it appears in the text format.
    fn value_str(&self, i: usize) -> String {
        match self {
            SweepAxis::Graph(v) => graph_descriptor(&v[i]),
            SweepAxis::N(v) | SweepAxis::K(v) | SweepAxis::Replicas(v) | SweepAxis::Churn(v) => {
                v[i].to_string()
            }
            SweepAxis::Eps(v) => v[i].to_string(),
            SweepAxis::Seed(v) | SweepAxis::ChurnSeed(v) => v[i].to_string(),
        }
    }
}

impl fmt::Display for SweepAxis {
    /// The `sweep` line without the leading `sweep ` key:
    /// `<param> = v1,v2,...`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} =", self.key())?;
        let values: Vec<String> = (0..self.len()).map(|i| self.value_str(i)).collect();
        write!(f, " {}", values.join(","))
    }
}

/// The compact `:`-separated spelling of a graph inside a sweep value
/// list (`torus:rows=8:cols=8`).
fn graph_descriptor(g: &GraphSpec) -> String {
    g.to_string().replace(' ', ":")
}

/// A base scenario plus the `sweep` axes laid over it — the parsed form
/// of a `.scn` file containing `sweep` lines. `axes` keeps file order;
/// an empty `axes` is the degenerate single-cell sweep (every plain
/// scenario file parses as one).
#[derive(Debug, Clone, PartialEq)]
pub struct SweepSpec {
    /// The cell template every axis perturbs.
    pub base: ScenarioSpec,
    /// The sweep axes in declaration order. The *last* crossed axis
    /// varies fastest in [`SweepSpec::cells`].
    pub axes: Vec<SweepAxis>,
}

impl SweepSpec {
    /// Wraps a single scenario as a degenerate one-cell sweep.
    pub fn single(base: ScenarioSpec) -> SweepSpec {
        SweepSpec {
            base,
            axes: Vec::new(),
        }
    }

    /// Number of cells the sweep expands to: the product of the crossed
    /// axis lengths.
    pub fn cell_count(&self) -> usize {
        self.axes
            .iter()
            .filter(|a| a.is_crossed())
            .map(SweepAxis::len)
            .product()
    }

    /// Whether the sweep runs under common random numbers: no zipped
    /// `seed` axis, so every cell keeps the base master seed and trial
    /// `i` is paired across cells.
    pub fn is_crn(&self) -> bool {
        !self.axes.iter().any(|a| matches!(a, SweepAxis::Seed(_)))
    }

    /// Validates the axes against the base spec (and the base spec
    /// itself): non-empty value lists, no duplicate keys, axis
    /// applicability (a `k` axis needs the node model, a `churn` axis
    /// a parameterised churn line, an `n` axis a sized family), zipped
    /// lengths equal to the crossed product, cell count within
    /// [`MAX_CELLS`] — then every expanded cell individually.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |message: String| Err(SimError::Invalid(message));
        self.base.validate()?;
        for (i, axis) in self.axes.iter().enumerate() {
            if axis.is_empty() {
                return invalid(format!("sweep {} needs at least one value", axis.key()));
            }
            if self.axes[..i].iter().any(|a| a.key() == axis.key()) {
                return invalid(format!("duplicate sweep axis '{}'", axis.key()));
            }
            match axis {
                SweepAxis::K(_) => {
                    if !matches!(self.base.model, ModelSpec::Node { .. }) {
                        return invalid("sweep k needs the node model".into());
                    }
                }
                SweepAxis::Eps(values) => {
                    if !matches!(self.base.stop, StopSpec::Converge { .. }) {
                        return invalid("sweep eps needs a 'stop converge' rule".into());
                    }
                    if values.iter().any(|e| !e.is_finite()) {
                        return invalid("sweep eps values must be finite".into());
                    }
                }
                SweepAxis::Churn(_) => match self.base.churn.as_ref().map(|c| &c.model) {
                    Some(ChurnModelSpec::EdgeSwap { .. } | ChurnModelSpec::Rewire { .. }) => {}
                    _ => {
                        return invalid(
                            "sweep churn needs a 'churn edge_swap' or 'churn rewire' line".into(),
                        )
                    }
                },
                SweepAxis::N(values) => {
                    for &n in values {
                        with_n(&self.base.graph, n)?;
                    }
                }
                SweepAxis::ChurnSeed(_) => {
                    if self.base.churn.is_none() {
                        return invalid("sweep churn_seed needs a churn line".into());
                    }
                }
                SweepAxis::Graph(_) | SweepAxis::Replicas(_) | SweepAxis::Seed(_) => {}
            }
        }
        let cells = self.cell_count();
        if cells > MAX_CELLS {
            return invalid(format!("sweep expands to {cells} cells (max {MAX_CELLS})"));
        }
        for axis in &self.axes {
            if !axis.is_crossed() && axis.len() != cells {
                return invalid(format!(
                    "sweep {} is zipped per cell: needs {cells} values, got {}",
                    axis.key(),
                    axis.len()
                ));
            }
        }
        for cell in self.expand()? {
            cell.spec.validate()?;
        }
        Ok(())
    }

    /// Expands the sweep into its cell lattice, odometer order: the
    /// last crossed axis varies fastest, zipped axes assign value `i`
    /// to cell `i`.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] if an axis value cannot apply to the base
    /// spec (e.g. `sweep n` over a torus).
    pub fn cells(&self) -> Result<Vec<SweepCell>, SimError> {
        self.validate()?;
        self.expand()
    }

    /// [`SweepSpec::cells`] without the validation pass (validation
    /// itself expands to check each cell).
    fn expand(&self) -> Result<Vec<SweepCell>, SimError> {
        let crossed: Vec<&SweepAxis> = self.axes.iter().filter(|a| a.is_crossed()).collect();
        let zipped: Vec<&SweepAxis> = self.axes.iter().filter(|a| !a.is_crossed()).collect();
        let count = self.cell_count();
        let mut cells = Vec::with_capacity(count);
        // Odometer over the crossed axes, last axis fastest.
        let mut digits = vec![0usize; crossed.len()];
        for idx in 0..count {
            let mut spec = self.base.clone();
            let mut label = Vec::new();
            for (axis, &digit) in crossed.iter().zip(&digits) {
                apply_axis(&mut spec, axis, digit)?;
                label.push(format!("{}={}", axis.key(), axis.value_str(digit)));
            }
            for axis in &zipped {
                apply_axis(&mut spec, axis, idx)?;
            }
            cells.push(SweepCell {
                index: idx,
                label: label.join(" "),
                spec,
            });
            for d in (0..digits.len()).rev() {
                digits[d] += 1;
                if digits[d] < crossed[d].len() {
                    break;
                }
                digits[d] = 0;
            }
        }
        Ok(cells)
    }

    /// Parses a `.scn` text that may contain `sweep` lines. A file with
    /// none parses as a degenerate single-cell sweep, so this is a
    /// strict superset of [`ScenarioSpec::parse`].
    ///
    /// # Errors
    ///
    /// [`SimError::Parse`] with the offending line, or
    /// [`SimError::Invalid`] from [`SweepSpec::validate`].
    pub fn parse(text: &str) -> Result<SweepSpec, SimError> {
        let mut axes: Vec<SweepAxis> = Vec::new();
        // Blank out the sweep lines so the base parser sees the file
        // with its original line numbers intact.
        let mut base_lines: Vec<&str> = Vec::new();
        for (idx, raw_line) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw_line.split('#').next().unwrap_or("").trim();
            let mut tokens = content.split_whitespace();
            if tokens.next() != Some("sweep") {
                base_lines.push(raw_line);
                continue;
            }
            base_lines.push("");
            let rest: Vec<&str> = tokens.collect();
            let axis = parse_axis(line, &rest)?;
            if axes.iter().any(|a| a.key() == axis.key()) {
                return Err(SimError::Parse {
                    line,
                    message: format!("duplicate sweep axis '{}'", axis.key()),
                });
            }
            axes.push(axis);
        }
        let base = ScenarioSpec::parse(&base_lines.join("\n"))?;
        let sweep = SweepSpec { base, axes };
        sweep.validate()?;
        Ok(sweep)
    }
}

impl fmt::Display for SweepSpec {
    /// The canonical text form: the base spec followed by the `sweep`
    /// lines in declaration order, so `parse(spec.to_string()) == spec`
    /// exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.base)?;
        for axis in &self.axes {
            writeln!(f, "sweep {axis}")?;
        }
        Ok(())
    }
}

/// Parses the tokens after the `sweep` key: `<param> = v1,v2,...` (the
/// values may also be attached to the `=` or comma-split across
/// whitespace).
fn parse_axis(line: usize, rest: &[&str]) -> Result<SweepAxis, SimError> {
    let err = |message: String| SimError::Parse { line, message };
    let Some((&key, after_key)) = rest.split_first() else {
        return Err(err("sweep needs '<param> = v1,v2,...'".into()));
    };
    // Accept `k = 1,2`, `k= 1,2`, `k =1,2` and `k=1,2` by re-joining
    // and splitting on the first '='.
    let joined = format!("{} {}", key, after_key.join(" "));
    let Some((key, values_part)) = joined.split_once('=') else {
        return Err(err(format!("sweep {key} needs '= v1,v2,...'")));
    };
    let key = key.trim();
    let values: Vec<&str> = values_part
        .split(',')
        .map(str::trim)
        .filter(|v| !v.is_empty())
        .collect();
    if values.is_empty() {
        return Err(err(format!("sweep {key} needs at least one value")));
    }
    fn scalars<T: std::str::FromStr>(
        line: usize,
        key: &str,
        values: &[&str],
    ) -> Result<Vec<T>, SimError> {
        values
            .iter()
            .map(|v| {
                v.parse().map_err(|_| SimError::Parse {
                    line,
                    message: format!("malformed sweep {key} value '{v}'"),
                })
            })
            .collect()
    }
    match key {
        "graph" => {
            let graphs = values
                .iter()
                .map(|descriptor| {
                    let tokens: Vec<&str> = descriptor.split(':').collect();
                    parse_graph_tokens(line, &tokens)
                })
                .collect::<Result<Vec<_>, _>>()?;
            Ok(SweepAxis::Graph(graphs))
        }
        "n" => Ok(SweepAxis::N(scalars(line, key, &values)?)),
        "k" => Ok(SweepAxis::K(scalars(line, key, &values)?)),
        "eps" => Ok(SweepAxis::Eps(scalars(line, key, &values)?)),
        "replicas" => Ok(SweepAxis::Replicas(scalars(line, key, &values)?)),
        "churn" => Ok(SweepAxis::Churn(scalars(line, key, &values)?)),
        "seed" => Ok(SweepAxis::Seed(scalars(line, key, &values)?)),
        "churn_seed" => Ok(SweepAxis::ChurnSeed(scalars(line, key, &values)?)),
        other => Err(err(format!("unknown sweep parameter '{other}'"))),
    }
}

/// `graph` with its size parameter set to `n`, for the families that
/// have one.
fn with_n(graph: &GraphSpec, n: usize) -> Result<GraphSpec, SimError> {
    let mut g = graph.clone();
    match &mut g {
        GraphSpec::Cycle { n: slot }
        | GraphSpec::Path { n: slot }
        | GraphSpec::Complete { n: slot }
        | GraphSpec::Star { n: slot }
        | GraphSpec::Gnp { n: slot, .. }
        | GraphSpec::Gnm { n: slot, .. }
        | GraphSpec::RandomRegular { n: slot, .. }
        | GraphSpec::WattsStrogatz { n: slot, .. }
        | GraphSpec::BarabasiAlbert { n: slot, .. } => *slot = n,
        _ => {
            return Err(SimError::Invalid(format!(
                "sweep n cannot apply to 'graph {graph}' (no n parameter)"
            )))
        }
    }
    Ok(g)
}

/// Writes axis value `i` into `spec`.
fn apply_axis(spec: &mut ScenarioSpec, axis: &SweepAxis, i: usize) -> Result<(), SimError> {
    let invalid = |message: String| Err(SimError::Invalid(message));
    match axis {
        SweepAxis::Graph(v) => spec.graph = v[i].clone(),
        SweepAxis::N(v) => spec.graph = with_n(&spec.graph, v[i])?,
        SweepAxis::K(v) => match &mut spec.model {
            ModelSpec::Node { k, .. } => *k = v[i],
            _ => return invalid("sweep k needs the node model".into()),
        },
        SweepAxis::Eps(v) => match &mut spec.stop {
            StopSpec::Converge { epsilon, .. } => *epsilon = v[i],
            _ => return invalid("sweep eps needs a 'stop converge' rule".into()),
        },
        SweepAxis::Replicas(v) => spec.replicas = v[i],
        SweepAxis::Churn(v) => {
            match spec.churn.as_mut().map(|c| &mut c.model) {
                Some(ChurnModelSpec::EdgeSwap { swaps }) => *swaps = v[i],
                Some(ChurnModelSpec::Rewire { rewires, .. }) => *rewires = v[i],
                _ => {
                    return invalid(
                        "sweep churn needs a 'churn edge_swap' or 'churn rewire' line".into(),
                    )
                }
            };
        }
        SweepAxis::Seed(v) => spec.seed = v[i],
        SweepAxis::ChurnSeed(v) => match spec.churn.as_mut() {
            Some(churn) => churn.seed = v[i],
            None => return invalid("sweep churn_seed needs a churn line".into()),
        },
    }
    Ok(())
}

/// One expanded cell of a sweep: its lattice position, a human-readable
/// `key=value` label of the crossed coordinates, and the fully
/// substituted scenario.
#[derive(Debug, Clone, PartialEq)]
pub struct SweepCell {
    /// Position in expansion order (odometer, last axis fastest).
    pub index: usize,
    /// `key=value` pairs of the crossed axes, space-separated (empty
    /// for a degenerate single-cell sweep).
    pub label: String,
    /// The cell's scenario.
    pub spec: ScenarioSpec,
}

/// One cell's results inside a [`SweepReport`].
#[derive(Debug, Clone)]
pub struct CellReport {
    /// The cell (lattice position, label, spec).
    pub cell: SweepCell,
    /// Which of the distinct shared graph builds the cell used.
    pub graph_index: usize,
    /// The cell's simulation report.
    pub report: SimulationReport,
}

impl CellReport {
    /// Per-trial step counts as f64 — the paired-contrast observable.
    fn steps_f64(&self) -> Vec<f64> {
        self.report.trials.iter().map(|t| t.steps as f64).collect()
    }
}

/// A CRN-paired contrast of one cell against the baseline cell 0.
#[derive(Debug, Clone)]
pub struct SweepContrast {
    /// The contrasted cell's lattice position.
    pub cell: usize,
    /// The contrasted cell's label.
    pub label: String,
    /// Paired-t contrast of mean steps (`cell − baseline`); `None` when
    /// the replica counts differ (pairing needs equal lengths).
    pub steps: Option<Contrast>,
}

/// The results of [`run_sweep`]: per-cell reports plus the structure
/// that was exploited.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// Per-cell results, expansion order.
    pub cells: Vec<CellReport>,
    /// Number of distinct graphs actually built (≤ cell count; the gap
    /// is the shared-CSR saving).
    pub distinct_graphs: usize,
    /// Whether the sweep ran under common random numbers (no zipped
    /// `seed` axis).
    pub crn: bool,
}

impl SweepReport {
    /// Paired-t contrasts of every cell against cell 0, CRN sweeps
    /// only (pairing is meaningless under independent seeding — returns
    /// an empty list). Cells whose replica count differs from the
    /// baseline's are skipped (`steps: None`).
    pub fn contrasts(&self) -> Vec<SweepContrast> {
        if !self.crn || self.cells.len() < 2 {
            return Vec::new();
        }
        let baseline = self.cells[0].steps_f64();
        self.cells[1..]
            .iter()
            .map(|cell| {
                let steps = cell.steps_f64();
                let contrast = (steps.len() == baseline.len() && steps.len() >= 2)
                    .then(|| paired_t_ci(&steps, &baseline));
                SweepContrast {
                    cell: cell.cell.index,
                    label: cell.cell.label.clone(),
                    steps: contrast,
                }
            })
            .collect()
    }
}

/// A validated sweep expanded into its schedulable parts: the cell
/// lattice plus the distinct-graph dedupe, *without* running anything.
///
/// This is [`run_sweep`]'s planning half split out for callers that
/// schedule cells themselves — the `od-serve` daemon fans a plan's
/// cells out to a worker pool (memoising each independently) instead of
/// running them in a loop. Cells sharing a resolved [`GraphSpec`] map
/// to the same [`SweepPlan::graph_index`], so one CSR build can still
/// be shared however the cells are scheduled.
#[derive(Debug, Clone)]
pub struct SweepPlan {
    /// The expanded cells, lattice order.
    pub cells: Vec<SweepCell>,
    /// The distinct resolved graph specs, first-use order.
    pub graph_specs: Vec<GraphSpec>,
    /// `cell_graph[i]` is the index into [`SweepPlan::graph_specs`] of
    /// cell `i`'s graph.
    pub cell_graph: Vec<usize>,
    /// Whether the sweep runs under common random numbers.
    pub crn: bool,
}

impl SweepPlan {
    /// Validates and expands `sweep` into a plan.
    ///
    /// # Errors
    ///
    /// Validation errors from [`SweepSpec::validate`].
    pub fn new(sweep: &SweepSpec) -> Result<SweepPlan, SimError> {
        let cells = sweep.cells()?;
        // Dedupe the resolved graph specs by linear scan — sweeps are
        // small (≤ MAX_CELLS) and GraphSpec is PartialEq.
        let mut graph_specs: Vec<GraphSpec> = Vec::new();
        let cell_graph = cells
            .iter()
            .map(|cell| {
                graph_specs
                    .iter()
                    .position(|g| *g == cell.spec.graph)
                    .unwrap_or_else(|| {
                        graph_specs.push(cell.spec.graph.clone());
                        graph_specs.len() - 1
                    })
            })
            .collect();
        Ok(SweepPlan {
            cells,
            graph_specs,
            cell_graph,
            crn: sweep.is_crn(),
        })
    }

    /// The distinct-graph index of cell `i` (into
    /// [`SweepPlan::graph_specs`]).
    pub fn graph_index(&self, cell: usize) -> usize {
        self.cell_graph[cell]
    }

    /// Builds distinct graph `graph_index` (callers cache and share the
    /// instance across that graph's cells), performing the edge-list IO
    /// for file graphs.
    ///
    /// # Errors
    ///
    /// [`SimError::Graph`] from the generator, or [`SimError::Invalid`]
    /// from the edge-list loader.
    pub fn build_graph(&self, graph_index: usize) -> Result<Graph, SimError> {
        self.graph_specs[graph_index].realize()
    }
}

/// Runs one already-expanded cell on a shared graph instance — the
/// per-cell unit of work [`run_sweep`] loops over and a cell-granular
/// scheduler (the `od-serve` daemon) dispatches independently.
///
/// # Errors
///
/// Assembly errors from [`Simulation::from_spec_with_graph`] (including
/// file-input IO) or run errors from [`Simulation::run`].
pub fn run_cell(spec: &ScenarioSpec, graph: Graph) -> Result<SimulationReport, SimError> {
    Simulation::from_spec_with_graph(spec, graph)?.run()
}

/// Runs every cell of a sweep, building each distinct graph exactly
/// once and reusing it across the cells that share it.
///
/// # Errors
///
/// Validation errors from [`SweepSpec::validate`], assembly errors from
/// [`Simulation::from_spec_with_graph`] (including file-input IO), or
/// run errors from [`Simulation::run`].
pub fn run_sweep(sweep: &SweepSpec) -> Result<SweepReport, SimError> {
    let plan = SweepPlan::new(sweep)?;
    let mut graphs: Vec<Option<Graph>> = vec![None; plan.graph_specs.len()];
    let mut reports = Vec::with_capacity(plan.cells.len());
    for (i, cell) in plan.cells.into_iter().enumerate() {
        let graph_index = plan.cell_graph[i];
        let graph = match &graphs[graph_index] {
            Some(g) => g.clone(),
            None => {
                let g = plan.graph_specs[graph_index].realize()?;
                graphs[graph_index] = Some(g.clone());
                g
            }
        };
        let report = run_cell(&cell.spec, graph)?;
        reports.push(CellReport {
            cell,
            graph_index,
            report,
        });
    }
    Ok(SweepReport {
        cells: reports,
        distinct_graphs: plan.graph_specs.len(),
        crn: plan.crn,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ChurnSpec;

    fn base() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(
            ModelSpec::Node {
                alpha: 0.5,
                k: 1,
                lazy: false,
            },
            GraphSpec::Cycle { n: 8 },
            0,
        );
        spec.stop = StopSpec::Converge {
            epsilon: 1e-6,
            rule: crate::spec::StopRuleSpec::Exact,
            potential: crate::spec::PotentialSpec::Pi,
            budget: 1_000_000,
        };
        spec.replicas = 4;
        spec.seed = 7;
        spec
    }

    #[test]
    fn single_cell_sweep_is_plain_scenario() {
        let sweep = SweepSpec::single(base());
        assert_eq!(sweep.cell_count(), 1);
        assert!(sweep.is_crn());
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 1);
        assert_eq!(cells[0].spec, base());
        assert_eq!(cells[0].label, "");
    }

    #[test]
    fn odometer_expansion_last_axis_fastest() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::N(vec![8, 16]), SweepAxis::K(vec![1, 2, 3])],
        };
        let cells = sweep.cells().unwrap();
        assert_eq!(cells.len(), 6);
        // k (last axis) varies fastest.
        assert_eq!(cells[0].label, "n=8 k=1");
        assert_eq!(cells[1].label, "n=8 k=2");
        assert_eq!(cells[3].label, "n=16 k=1");
        assert!(matches!(cells[3].spec.graph, GraphSpec::Cycle { n: 16 }));
        assert!(matches!(cells[1].spec.model, ModelSpec::Node { k: 2, .. }));
    }

    #[test]
    fn zipped_seed_length_must_match() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::K(vec![1, 2]), SweepAxis::Seed(vec![10, 20, 30])],
        };
        assert!(matches!(sweep.validate(), Err(SimError::Invalid(_))));
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::K(vec![1, 2]), SweepAxis::Seed(vec![10, 20])],
        };
        sweep.validate().unwrap();
        assert!(!sweep.is_crn());
        let cells = sweep.cells().unwrap();
        assert_eq!(cells[0].spec.seed, 10);
        assert_eq!(cells[1].spec.seed, 20);
    }

    #[test]
    fn n_axis_rejects_fixed_size_families() {
        let mut spec = base();
        spec.graph = GraphSpec::Torus { rows: 4, cols: 4 };
        let sweep = SweepSpec {
            base: spec,
            axes: vec![SweepAxis::N(vec![8, 16])],
        };
        assert!(matches!(sweep.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn parse_display_round_trip_with_axes() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![
                SweepAxis::Graph(vec![
                    GraphSpec::Cycle { n: 16 },
                    GraphSpec::Torus { rows: 4, cols: 4 },
                ]),
                SweepAxis::Eps(vec![1e-6, 1e-9]),
            ],
        };
        let text = sweep.to_string();
        assert!(text.contains("sweep graph = cycle:n=16,torus:rows=4:cols=4"));
        let parsed = SweepSpec::parse(&text).unwrap();
        assert_eq!(parsed, sweep);
    }

    #[test]
    fn parse_rejects_duplicate_axis() {
        let text = format!("{}sweep k = 1,2\nsweep k = 3\n", base());
        assert!(matches!(
            SweepSpec::parse(&text),
            Err(SimError::Parse { .. })
        ));
    }

    #[test]
    fn parse_plain_scenario_as_degenerate_sweep() {
        let text = base().to_string();
        let sweep = SweepSpec::parse(&text).unwrap();
        assert!(sweep.axes.is_empty());
        assert_eq!(sweep.base, base());
    }

    #[test]
    fn churn_axis_applies_to_swaps() {
        let mut spec = base();
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 0 },
            steps_per_epoch: 8,
            seed: 3,
        });
        // Under churn, convergence checks happen at epoch boundaries.
        if let StopSpec::Converge { rule, .. } = &mut spec.stop {
            *rule = crate::spec::StopRuleSpec::Block;
        }
        let sweep = SweepSpec {
            base: spec,
            axes: vec![
                SweepAxis::Churn(vec![0, 4]),
                SweepAxis::ChurnSeed(vec![100, 200]),
            ],
        };
        let cells = sweep.cells().unwrap();
        assert!(sweep.is_crn());
        assert_eq!(cells.len(), 2);
        let churn = cells[1].spec.churn.as_ref().unwrap();
        assert_eq!(churn.model, ChurnModelSpec::EdgeSwap { swaps: 4 });
        assert_eq!(churn.seed, 200);
    }

    #[test]
    fn run_sweep_shares_graphs() {
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::K(vec![1, 2]), SweepAxis::Eps(vec![1e-3, 1e-6])],
        };
        let report = run_sweep(&sweep).unwrap();
        assert_eq!(report.cells.len(), 4);
        assert_eq!(report.distinct_graphs, 1, "one cycle build for 4 cells");
        assert!(report.crn);
        assert_eq!(report.contrasts().len(), 3);
    }

    #[test]
    fn invalid_cell_caught_at_validate() {
        // k = 5 exceeds the cycle's degree 2 only at from_spec time, but
        // k = 0 is caught by per-cell validate.
        let sweep = SweepSpec {
            base: base(),
            axes: vec![SweepAxis::K(vec![0])],
        };
        assert!(matches!(sweep.validate(), Err(SimError::Invalid(_))));
    }
}
