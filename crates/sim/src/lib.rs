//! Unified scenario API: one declarative entry point over every engine.
//!
//! The paper's experiments are all instances of one parameter space —
//! model (NodeModel-k / EdgeModel / voter) × topology (any generator,
//! static or churned) × replicas × stopping rule — and the recurrent-
//! averaging literature (Proskurnikov et al., arXiv:1910.14465; Touri &
//! Langbort, arXiv:1401.3217) treats these variants as one family under a
//! common averaging abstraction. This crate makes the API say so too:
//!
//! * [`ScenarioSpec`] — a declarative description of one scenario, with a
//!   hand-rolled text format (`parse` / `Display` round-trip; see
//!   `examples/scenarios/*.scn` and the `run_experiments scenario`
//!   subcommand);
//! * [`Simulation`] — validates the spec and **dispatches to the optimal
//!   engine automatically**: the scalar recorded path for single-replica
//!   traces, the retirement-aware streaming convergence runner for static
//!   sweeps, the `Dynamic*` kernels under churn, the voter batches for
//!   voter specs (dispatch table in [`sim`]);
//! * [`SimulationReport`] — per-trial stopping times, `F` estimates and
//!   summary statistics (via `od-stats`), engine-independent;
//! * [`runner`] — the schedule-independent parallel Monte-Carlo driver
//!   the dispatch layer (and `od-experiments`) runs chunks through.
//!
//! Trial `i` always runs from `SeedSequence::new(spec.seed).seed(i)`, so
//! a scenario's statistics are bit-identical to the direct engine call it
//! replaces — gated per experiment in `tests/batch_equivalence.rs`.
//!
//! # Example
//!
//! ```
//! use od_sim::{ScenarioSpec, Simulation};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let spec = ScenarioSpec::parse(
//!     "model node alpha=0.5 k=2 lazy=false\n\
//!      graph torus rows=8 cols=8\n\
//!      init pm_one\n\
//!      replicas 4\n\
//!      seed 7\n\
//!      stop converge eps=0.000001 rule=exact potential=pi budget=10000000\n",
//! )?;
//! let report = Simulation::from_spec(&spec)?.run()?;
//! assert_eq!(report.converged_count(), 4);
//! assert!(report.steps_summary().mean > 0.0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod rows;
pub mod runner;
pub mod sim;
pub mod spec;
pub mod sweep;

pub use rows::{cell_rows, sweep_rows, TrialRow, CSV_HEADER};
pub use sim::{Engine, Simulation, SimulationReport, TrialResult};
pub use spec::{
    load_edge_list_file, load_init_file, load_replay_file, pm_one, ChurnModelSpec, ChurnSpec,
    GraphSpec, InitSpec, ModelSpec, OutputSpec, PotentialSpec, ScenarioSpec, SimError,
    StopRuleSpec, StopSpec, TierSpec, WeightSpec, DEFAULT_BATCH,
};
pub use sweep::{
    run_cell, run_sweep, CellReport, SweepAxis, SweepCell, SweepContrast, SweepPlan, SweepReport,
    SweepSpec, MAX_CELLS,
};
