//! Parallel Monte-Carlo driver.
//!
//! Trials are split across threads with `std::thread::scope`; each
//! trial gets a seed derived purely from `(master, trial index)`, so the
//! result multiset is independent of the thread count and schedule.
//!
//! Two granularities: [`monte_carlo`] hands one seed at a time to the
//! trial closure (rebuilding per-trial state from scratch), while
//! [`monte_carlo_batched`] hands out contiguous *chunks* of seeds so the
//! closure can run them through one `od_core::ReplicaBatch` — a shared
//! CSR graph and structure-of-arrays values instead of per-trial setup.
//! Because trial `i` always receives `seeds.seed(i)`, results are
//! identical (not merely equal as multisets) across thread counts AND
//! batch sizes, and `monte_carlo_batched(.., 1, ..)` degenerates to
//! [`monte_carlo`].

use od_stats::{SeedSequence, Welford};
use std::sync::{Mutex, PoisonError};

/// Runs `trials` independent trials of `f` (given the per-trial seed) in
/// parallel, returning all results in trial order.
///
/// One-trial-per-chunk specialisation of [`monte_carlo_batched`] — a
/// single scheduler serves both entry points.
pub fn monte_carlo<T, F>(trials: usize, seeds: SeedSequence, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(u64) -> T + Sync,
{
    monte_carlo_batched(trials, seeds, 1, |_, chunk| {
        chunk.iter().map(|&seed| f(seed)).collect()
    })
}

/// Runs `trials` trials in parallel, `batch` at a time: the closure
/// receives the index of the chunk's first trial plus the chunk's
/// per-trial seeds, and returns one result per seed (in seed order).
/// Results come back in trial order.
///
/// The intended consumer builds an `od_core::ReplicaBatch` (or
/// `VoterBatch`) from the seed slice — one replica per trial — and reads
/// one result per replica off it. Worker count is
/// `std::thread::available_parallelism()`; use
/// [`monte_carlo_batched_threads`] for an explicit cap.
///
/// # Panics
///
/// Panics if `batch == 0` or if `f` returns a result count different from
/// the seed count it was given.
pub fn monte_carlo_batched<T, F>(trials: usize, seeds: SeedSequence, batch: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[u64]) -> Vec<T> + Sync,
{
    monte_carlo_batched_threads(trials, seeds, batch, 0, f)
}

/// [`monte_carlo_batched`] with an explicit worker-thread count
/// (`0` = available parallelism) — the scenario dispatcher routes its
/// `threads` knob here. Results are identical for every thread count.
///
/// # Panics
///
/// The same as [`monte_carlo_batched`].
pub fn monte_carlo_batched_threads<T, F>(
    trials: usize,
    seeds: SeedSequence,
    batch: usize,
    threads: usize,
    f: F,
) -> Vec<T>
where
    T: Send,
    F: Fn(usize, &[u64]) -> Vec<T> + Sync,
{
    assert!(batch > 0, "batch size must be positive");
    let chunks = trials.div_ceil(batch);
    let threads = if threads == 0 {
        std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1)
    } else {
        threads
    }
    .min(chunks.max(1));
    let results: Mutex<Vec<(usize, Vec<T>)>> = Mutex::new(Vec::with_capacity(chunks));
    std::thread::scope(|scope| {
        for worker in 0..threads {
            let results = &results;
            let f = &f;
            let seeds = &seeds;
            scope.spawn(move || {
                let mut local = Vec::new();
                let mut chunk = worker;
                while chunk < chunks {
                    let start = chunk * batch;
                    let end = (start + batch).min(trials);
                    let chunk_seeds: Vec<u64> =
                        (start..end).map(|i| seeds.seed(i as u64)).collect();
                    let out = f(start, &chunk_seeds);
                    assert_eq!(
                        out.len(),
                        chunk_seeds.len(),
                        "batched trial fn returned {} results for {} seeds",
                        out.len(),
                        chunk_seeds.len()
                    );
                    local.push((start, out));
                    chunk += threads;
                }
                // Poison recovery is sound here: a panicking trial
                // closure never holds the lock, and `thread::scope`
                // re-raises any worker panic before results are read —
                // recovering the guard can't surface a partial run.
                results
                    .lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .extend(local);
            });
        }
    });
    let mut collected = results.into_inner().unwrap_or_else(PoisonError::into_inner);
    collected.sort_by_key(|(start, _)| *start);
    collected.into_iter().flat_map(|(_, out)| out).collect()
}

/// Runs trials and folds the `f64` results into a single Welford
/// accumulator.
pub fn monte_carlo_stats<F>(trials: usize, seeds: SeedSequence, f: F) -> Welford
where
    F: Fn(u64) -> f64 + Sync,
{
    monte_carlo(trials, seeds, f).into_iter().collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_runs() {
        let seeds = SeedSequence::new(42);
        let a = monte_carlo(100, seeds, |s| s.wrapping_mul(3));
        let b = monte_carlo(100, seeds, |s| s.wrapping_mul(3));
        assert_eq!(a, b);
    }

    #[test]
    fn results_in_trial_order() {
        let seeds = SeedSequence::new(1);
        let idx = monte_carlo(64, seeds, |_| ());
        assert_eq!(idx.len(), 64);
        // Trial order is checked through seeds: f receives seed(i), so
        // reconstruct and compare.
        let vals = monte_carlo(64, seeds, |s| s);
        let expected: Vec<u64> = (0..64).map(|i| seeds.seed(i)).collect();
        assert_eq!(vals, expected);
    }

    #[test]
    fn stats_match_sequential_fold() {
        let seeds = SeedSequence::new(7);
        let w = monte_carlo_stats(500, seeds, |s| (s % 1000) as f64);
        let mut seq = Welford::new();
        for i in 0..500 {
            seq.push((seeds.seed(i) % 1000) as f64);
        }
        assert_eq!(w.count(), seq.count());
        assert!((w.mean().unwrap() - seq.mean().unwrap()).abs() < 1e-9);
    }

    #[test]
    fn single_trial_ok() {
        let seeds = SeedSequence::new(9);
        let v = monte_carlo(1, seeds, |s| s);
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn batched_results_independent_of_batch_size() {
        let seeds = SeedSequence::new(13);
        let scalar = monte_carlo(97, seeds, |s| s.wrapping_mul(7));
        for batch in [1usize, 3, 8, 32, 97, 200] {
            let batched = monte_carlo_batched(97, seeds, batch, |_, chunk| {
                chunk.iter().map(|s| s.wrapping_mul(7)).collect()
            });
            assert_eq!(batched, scalar, "batch size {batch}");
        }
    }

    #[test]
    fn batched_threads_results_independent_of_thread_count() {
        let seeds = SeedSequence::new(31);
        let f = |_: usize, chunk: &[u64]| -> Vec<u64> { chunk.iter().map(|s| s ^ 5).collect() };
        let reference = monte_carlo_batched(40, seeds, 4, f);
        for threads in [1usize, 2, 7, 64] {
            let got = monte_carlo_batched_threads(40, seeds, 4, threads, f);
            assert_eq!(got, reference, "threads={threads}");
        }
    }

    #[test]
    fn batched_chunk_starts_are_trial_indices() {
        let seeds = SeedSequence::new(21);
        // Return (start + offset) so reassembly order is fully checked.
        let out = monte_carlo_batched(50, seeds, 7, |start, chunk| {
            (0..chunk.len()).map(|i| start + i).collect()
        });
        assert_eq!(out, (0..50).collect::<Vec<_>>());
    }

    #[test]
    #[should_panic(expected = "batch size")]
    fn batched_zero_batch_panics() {
        monte_carlo_batched(10, SeedSequence::new(1), 0, |_, chunk| {
            vec![(); chunk.len()]
        });
    }

    #[test]
    // The result-count assertion fires inside a worker; `thread::scope`
    // re-raises it as its own panic on join.
    #[should_panic(expected = "scoped thread panicked")]
    fn batched_wrong_result_count_panics() {
        monte_carlo_batched(10, SeedSequence::new(1), 4, |_, _| vec![()]);
    }
}
