//! [`Simulation`]: validates a [`ScenarioSpec`], picks the optimal engine
//! and runs it, returning one unified [`SimulationReport`].
//!
//! # Dispatch table
//!
//! | scenario shape | engine |
//! |---|---|
//! | averaging, R = 1, `output trace` | scalar process + `trace_potential` (recorded run) |
//! | averaging, static, `stop steps` | `ReplicaBatch::step_many` over seed chunks |
//! | averaging, static, `stop converge` | `run_converge_streaming` (retirement-aware SoA window) |
//! | averaging, churn, `stop steps` | `DynamicReplicaBatch::step_epoch` over seed chunks |
//! | averaging, churn, `stop converge` | `DynamicReplicaBatch::run_until_converged` |
//! | voter, static, `stop steps` | `VoterBatch::step_many` |
//! | voter, static, `stop consensus` | `VoterBatch::run_to_consensus` |
//! | voter, churn | `DynamicVoterBatch` (incremental discord counter, epoch-boundary retirement) |
//! | averaging, `tier lane`, static | `LaneReplicaBatch` (`lane` feature; all replicas in one lane-major batch) |
//! | averaging, `tier lane`, churn | `DynamicLaneReplicaBatch` (`lane` feature; shared schedule and churn trajectory) |
//! | `degroot` / `fj` / `weighted_median` | `SyncKernel` deterministic synchronous rounds (the only engine for weighted *directed* graphs) |
//!
//! Weighted graphs (`weights uniform ...` or a 3-column `graph file=`)
//! run the exact batched engines or the sync kernels; a `tier lane`
//! spec on a weighted graph falls back to the exact engines, like a
//! `tier lane` spec compiled without the `lane` feature.
//!
//! Trial `i` always runs from `SeedSequence::new(spec.seed).seed(i)`, and
//! every **exact-tier** engine keeps per-trial results a function of that
//! seed alone — so a scenario's statistics are **bit-identical** to the
//! direct engine call it replaces, independent of batch size, window
//! capacity and thread count (gated in `tests/batch_equivalence.rs`).
//!
//! The **lane tier** (`tier lane` in the spec, behind the `lane` cargo
//! feature) instead runs *all* replicas as one lane-major SIMD batch: the
//! `batch` and `threads` knobs are documented no-ops there (chunking would
//! defeat the lane-major layout), per-replica results are drawn from the
//! correct marginal law but are **not** bit-comparable with the exact
//! tier, and when the feature is compiled out a `tier lane` spec falls
//! back to the exact engines. See `od_core::LaneReplicaBatch`.

use crate::runner::monte_carlo_batched_threads;
use crate::spec::{ModelSpec, OutputSpec, ScenarioSpec, SimError, StopRuleSpec, StopSpec};
use od_core::{
    run_converge_streaming, trace_potential, ConvergeConfig, ConvergeWindow, ConvergenceReport,
    DynamicReplicaBatch, DynamicVoterBatch, EdgeModel, KernelSpec, NodeModel, OpinionProcess,
    ReplicaBatch, StopRule, VoterBatch, WindowCheckpoint,
};
use od_graph::{ChurnModel, DynamicGraph, Graph};
use od_stats::{SeedSequence, Summary};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// The engine a scenario dispatches to (see the module-level table).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Engine {
    /// Scalar recorded run: one replica, incremental aggregates, a
    /// potential trace.
    ScalarRecorded,
    /// `ReplicaBatch::step_many` over seed chunks.
    StaticSteps,
    /// The retirement-aware streaming convergence runner
    /// (`od_core::run_converge_streaming`).
    StaticConverge,
    /// `DynamicReplicaBatch::step_epoch` over seed chunks.
    DynamicSteps,
    /// `DynamicReplicaBatch::run_until_converged` (epoch-boundary rule).
    DynamicConverge,
    /// `VoterBatch::step_many`.
    VoterSteps,
    /// `VoterBatch::run_to_consensus` (O(1) incremental consensus checks,
    /// early retirement).
    VoterConsensus,
    /// `DynamicVoterBatch::run_to_consensus` / `step_epoch` (incremental
    /// discord counter recomputed at churn boundaries, epoch-boundary
    /// retirement). Stopping times are bit-identical to the per-trial
    /// `DynamicVoterKernel` loop this engine replaced.
    DynamicVoter,
    /// `LaneReplicaBatch::step_many`: the lane-major SIMD tier, all
    /// replicas in one batch (`lane` feature, `tier lane`).
    LaneSteps,
    /// `LaneReplicaBatch::run_until_converged` (block-boundary rule,
    /// frozen — not retired — lanes).
    LaneConverge,
    /// `DynamicLaneReplicaBatch::step_epoch`: lane kernels over one
    /// shared churn trajectory.
    DynamicLaneSteps,
    /// `DynamicLaneReplicaBatch::run_until_converged` (epoch-boundary
    /// rule, frozen lanes).
    DynamicLaneConverge,
    /// `od_core::SyncKernel`: deterministic synchronous rounds for the
    /// `degroot` / `fj` / `weighted_median` models — the only engine
    /// that runs weighted *directed* graphs.
    SyncRounds,
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            Engine::ScalarRecorded => "scalar-recorded",
            Engine::StaticSteps => "replica-batch",
            Engine::StaticConverge => "streaming-converge",
            Engine::DynamicSteps => "dynamic-replica-batch",
            Engine::DynamicConverge => "dynamic-converge",
            Engine::VoterSteps => "voter-batch",
            Engine::VoterConsensus => "voter-consensus",
            Engine::DynamicVoter => "dynamic-voter",
            Engine::LaneSteps => "lane-batch",
            Engine::LaneConverge => "lane-converge",
            Engine::DynamicLaneSteps => "dynamic-lane-batch",
            Engine::DynamicLaneConverge => "dynamic-lane-converge",
            Engine::SyncRounds => "sync-rounds",
        };
        write!(f, "{name}")
    }
}

/// One trial's outcome, engine-independent.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrialResult {
    /// Steps the trial took (its stopping time, or the fixed horizon).
    pub steps: u64,
    /// Whether the stopping condition was met: ε-convergence for
    /// averaging converge runs, consensus for voter runs (fixed-horizon
    /// voter trials report whether the *end state* happens to be at
    /// consensus). Always `false` for fixed-horizon averaging runs, which
    /// have no threshold.
    pub converged: bool,
    /// The stopped potential (`φ` or `φ̄_V` per the spec); `NaN` for
    /// voter trials.
    pub potential: f64,
    /// The `F` estimate: `M(T)` under the π potential, `Avg(T)` under
    /// the uniform potential; `NaN` for voter trials.
    pub estimate: f64,
    /// The winning opinion (voter trials at consensus).
    pub winner: Option<u32>,
    /// Elementary topology mutations the trial's environment saw (churn
    /// scenarios; 0 on static graphs).
    pub mutations: u64,
}

impl TrialResult {
    fn from_convergence(report: &ConvergenceReport, mutations: u64) -> TrialResult {
        TrialResult {
            steps: report.steps,
            converged: report.converged,
            potential: report.potential,
            estimate: report.weighted_average,
            winner: None,
            mutations,
        }
    }
}

/// The unified result of a scenario run.
#[derive(Debug, Clone, PartialEq)]
pub struct SimulationReport {
    /// The engine the scenario dispatched to.
    pub engine: Engine,
    /// Per-trial results, in trial (seed) order.
    pub trials: Vec<TrialResult>,
    /// `(t, φ(ξ(t)))` samples for `output trace` scenarios.
    pub trace: Option<Vec<(u64, f64)>>,
}

impl SimulationReport {
    /// Number of trials that met their stopping condition.
    pub fn converged_count(&self) -> usize {
        self.trials.iter().filter(|t| t.converged).count()
    }

    /// Summary of per-trial stopping times (steps).
    ///
    /// # Panics
    ///
    /// Panics on an empty report.
    pub fn steps_summary(&self) -> Summary {
        Summary::of(
            &self
                .trials
                .iter()
                .map(|t| t.steps as f64)
                .collect::<Vec<_>>(),
        )
    }

    /// Summary of the `F` estimates over **converged** trials (`None` if
    /// no trial converged or the model has no estimate).
    pub fn estimate_summary(&self) -> Option<Summary> {
        let estimates: Vec<f64> = self
            .trials
            .iter()
            .filter(|t| t.converged && !t.estimate.is_nan())
            .map(|t| t.estimate)
            .collect();
        (!estimates.is_empty()).then(|| Summary::of(&estimates))
    }

    /// Maximum mutation count any trial's environment saw (the shared
    /// churn trajectory of the longest-lived chunk).
    pub fn max_mutations(&self) -> u64 {
        self.trials.iter().map(|t| t.mutations).max().unwrap_or(0)
    }
}

/// A validated, runnable scenario: the spec plus its resolved graph and
/// initial state. Build one with [`Simulation::from_spec`], optionally
/// override the graph or initial state (for programmatic inputs the text
/// format cannot express, e.g. an eigenvector initial condition), then
/// [`Simulation::run`].
#[derive(Debug, Clone)]
pub struct Simulation {
    spec: ScenarioSpec,
    graph: Graph,
    xi0: Vec<f64>,
    opinions0: Vec<u32>,
    /// The built churn model for dynamic scenarios — resolved once at
    /// assembly so file-backed models
    /// ([`crate::spec::ChurnModelSpec::Replay`]) do their IO (and
    /// surface their errors) at `from_spec`, not mid-run.
    churn_model: Option<ChurnModel>,
}

impl Simulation {
    /// Validates `spec`, builds its graph and initial state, and checks
    /// the model against the graph exactly as the engines would.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] for semantic violations, [`SimError::Graph`]
    /// from the generator, [`SimError::Core`] if the model rejects the
    /// graph (`k > d_min`, disconnected, …).
    pub fn from_spec(spec: &ScenarioSpec) -> Result<Simulation, SimError> {
        spec.validate()?;
        // `realize` also performs the edge-list IO of `graph file=`
        // specs, so a bad path or malformed file is a `from_spec` error.
        let graph = spec.graph.realize()?;
        Simulation::assemble(spec.clone(), graph)
    }

    /// Like [`Simulation::from_spec`], but runs on the given graph
    /// instance instead of building `spec.graph` — for callers that share
    /// one instance with a direct-engine comparison or a spectral
    /// predictor (the spec's `graph` field is then purely descriptive).
    ///
    /// # Errors
    ///
    /// The same as [`Simulation::from_spec`].
    pub fn from_spec_with_graph(spec: &ScenarioSpec, graph: Graph) -> Result<Simulation, SimError> {
        spec.validate()?;
        Simulation::assemble(spec.clone(), graph)
    }

    /// Replaces the graph (e.g. an instance shared with a direct-engine
    /// comparison), re-resolving the initial state for the new size.
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] if the model rejects the new graph.
    pub fn with_graph(self, graph: Graph) -> Result<Simulation, SimError> {
        Simulation::assemble(self.spec, graph)
    }

    /// Overrides the averaging initial values (inputs the declarative
    /// init distributions cannot express, e.g. a worst-case eigenvector).
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] on a voter scenario or length mismatch.
    pub fn with_initial_values(mut self, xi0: Vec<f64>) -> Result<Simulation, SimError> {
        if !self.spec.model.is_averaging() {
            return Err(SimError::Invalid(
                "voter scenarios take opinions, not values".into(),
            ));
        }
        if xi0.len() != self.graph.n() {
            return Err(SimError::Invalid(format!(
                "{} initial values for {} nodes",
                xi0.len(),
                self.graph.n()
            )));
        }
        self.xi0 = xi0;
        Ok(self)
    }

    /// Overrides the voter initial opinions.
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] on an averaging scenario or length mismatch.
    pub fn with_opinions(mut self, opinions0: Vec<u32>) -> Result<Simulation, SimError> {
        if self.spec.model.is_averaging() {
            return Err(SimError::Invalid(
                "averaging scenarios take values, not opinions".into(),
            ));
        }
        if opinions0.len() != self.graph.n() {
            return Err(SimError::Invalid(format!(
                "{} initial opinions for {} nodes",
                opinions0.len(),
                self.graph.n()
            )));
        }
        self.opinions0 = opinions0;
        Ok(self)
    }

    fn assemble(spec: ScenarioSpec, mut graph: Graph) -> Result<Simulation, SimError> {
        // Generated topologies become weighted here, after the graph is
        // realized (`weights uniform` draws one weight per edge from its
        // dedicated seed, so every replica sees the same instance).
        spec.weights.apply(&mut graph)?;
        // Graph-dependent gates that validate() cannot see: a file graph
        // reveals its weight/direction shape only after the IO.
        if graph.is_directed() && !spec.model.is_sync() {
            return Err(SimError::Invalid(
                "directed graphs run the synchronous models only (degroot, fj, weighted_median)"
                    .into(),
            ));
        }
        if graph.is_weighted() {
            if !spec.model.is_averaging() {
                return Err(SimError::Invalid(
                    "the voter model runs on unweighted graphs".into(),
                ));
            }
            if spec.churn.is_some() {
                return Err(SimError::Invalid(
                    "churned graphs are unweighted (the dynamic engines reject weights)".into(),
                ));
            }
            if matches!(spec.output, OutputSpec::Trace { .. }) {
                return Err(SimError::Invalid(
                    "trace output records the scalar path, which is unweighted".into(),
                ));
            }
        }
        let n = graph.n();
        if let crate::spec::InitSpec::Indicator { node } = spec.init {
            // Graph-dependent init check: a typo'd node id would
            // otherwise silently yield an all-zero initial state.
            if node >= n {
                return Err(SimError::Invalid(format!(
                    "indicator node {node} out of range for an {n}-node graph"
                )));
            }
        }
        let (xi0, opinions0) = if spec.model.is_averaging() {
            let values = match &spec.init {
                // File-backed init does its IO here, so a bad path or
                // malformed file is a `from_spec` error.
                crate::spec::InitSpec::File { path } => {
                    let values = crate::spec::load_init_file(path)?;
                    if values.len() != n {
                        return Err(SimError::Invalid(format!(
                            "init file '{path}' has {} values for an {n}-node graph",
                            values.len()
                        )));
                    }
                    values
                }
                init => init.values(n),
            };
            (values, Vec::new())
        } else {
            (Vec::new(), spec.init.opinions(n))
        };
        let churn_model = match &spec.churn {
            Some(churn) => Some(churn.model.build()?),
            None => None,
        };
        let sim = Simulation {
            spec,
            graph,
            xi0,
            opinions0,
            churn_model,
        };
        // Validate the (graph, init, model) triple once, through the same
        // constructors the engines use, so dispatch cannot fail later.
        match sim.spec.model {
            ModelSpec::Voter => {
                VoterBatch::new(&sim.graph, &sim.opinions0, &[])?;
            }
            model if model.is_sync() => {
                od_core::SyncKernel::new(
                    &sim.graph,
                    sim.xi0.clone(),
                    model.sync_model().expect("is_sync implies a sync model"),
                )?;
            }
            _ => {
                ReplicaBatch::new(&sim.graph, sim.spec.model.kernel_spec()?, &sim.xi0, &[])?;
            }
        }
        Ok(sim)
    }

    /// The spec this simulation was built from.
    pub fn spec(&self) -> &ScenarioSpec {
        &self.spec
    }

    /// The resolved graph instance.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// The engine this scenario dispatches to — a pure function of the
    /// spec shape (see the module docs).
    pub fn engine(&self) -> Engine {
        // The synchronous-rounds models have exactly one engine.
        if self.spec.model.is_sync() {
            return Engine::SyncRounds;
        }
        // `tier lane` only takes effect when the `lane` feature is
        // compiled in — otherwise the spec (still valid) falls back to
        // the exact engines. Validation already restricts lane specs to
        // averaging models without traces, with block/pi stopping.
        // Edge-model lane specs also fall back to the exact engines:
        // the lane edge kernel benches below the exact tier (its gather
        // is two scattered rows per step, not one dense column), and
        // `tier lane` is a never-slower knob, so only the node model
        // dispatches to the lane kernels. Weighted graphs fall back
        // too: the lane kernels reject per-edge weights, the exact
        // batched kernels aggregate them.
        let lane = cfg!(feature = "lane")
            && self.spec.tier == crate::spec::TierSpec::Lane
            && matches!(self.spec.model, ModelSpec::Node { .. })
            && !self.graph.is_weighted();
        match (&self.spec.model, &self.spec.churn, &self.spec.stop) {
            (ModelSpec::Voter, None, StopSpec::Consensus { .. }) => Engine::VoterConsensus,
            (ModelSpec::Voter, None, _) => Engine::VoterSteps,
            (ModelSpec::Voter, Some(_), _) => Engine::DynamicVoter,
            _ if matches!(self.spec.output, OutputSpec::Trace { .. }) => Engine::ScalarRecorded,
            (_, None, StopSpec::Converge { .. }) if lane => Engine::LaneConverge,
            (_, None, StopSpec::Converge { .. }) => Engine::StaticConverge,
            (_, None, _) if lane => Engine::LaneSteps,
            (_, None, _) => Engine::StaticSteps,
            (_, Some(_), StopSpec::Converge { .. }) if lane => Engine::DynamicLaneConverge,
            (_, Some(_), StopSpec::Converge { .. }) => Engine::DynamicConverge,
            (_, Some(_), _) if lane => Engine::DynamicLaneSteps,
            (_, Some(_), _) => Engine::DynamicSteps,
        }
    }

    /// Runs the scenario on its dispatched engine.
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] if an engine rejects the scenario mid-run (e.g.
    /// degree-changing churn broke the sampling preconditions).
    pub fn run(&self) -> Result<SimulationReport, SimError> {
        let engine = self.engine();
        let trials = match engine {
            Engine::ScalarRecorded => return self.run_scalar_recorded(),
            Engine::StaticConverge => self.run_static_converge()?,
            Engine::StaticSteps => self.run_static_steps()?,
            Engine::DynamicConverge => self.run_dynamic_converge()?,
            Engine::DynamicSteps => self.run_dynamic_steps()?,
            Engine::VoterConsensus => self.run_voter_consensus(),
            Engine::VoterSteps => self.run_voter_steps(),
            Engine::DynamicVoter => self.run_dynamic_voter()?,
            Engine::SyncRounds => self.run_sync_rounds()?,
            #[cfg(feature = "lane")]
            Engine::LaneSteps => self.run_lane_steps()?,
            #[cfg(feature = "lane")]
            Engine::LaneConverge => self.run_lane_converge()?,
            #[cfg(feature = "lane")]
            Engine::DynamicLaneSteps => self.run_dynamic_lane_steps()?,
            #[cfg(feature = "lane")]
            Engine::DynamicLaneConverge => self.run_dynamic_lane_converge()?,
            #[cfg(not(feature = "lane"))]
            Engine::LaneSteps
            | Engine::LaneConverge
            | Engine::DynamicLaneSteps
            | Engine::DynamicLaneConverge => {
                unreachable!("engine() never selects a lane engine without the lane feature")
            }
        };
        Ok(SimulationReport {
            engine,
            trials,
            trace: None,
        })
    }

    fn seeds(&self) -> SeedSequence {
        SeedSequence::new(self.spec.seed)
    }

    fn trial_seeds(&self) -> Vec<u64> {
        let seq = self.seeds();
        (0..self.spec.replicas as u64)
            .map(|i| seq.seed(i))
            .collect()
    }

    fn kernel_spec(&self) -> KernelSpec {
        self.spec
            .model
            .kernel_spec()
            .expect("assemble validated the model")
    }

    fn churn_parts(&self) -> (ChurnModel, u64, u64) {
        let churn = self
            .spec
            .churn
            .as_ref()
            .expect("dynamic engine requires churn");
        let model = self
            .churn_model
            .clone()
            .expect("assemble built the churn model");
        (model, churn.steps_per_epoch, churn.seed)
    }

    fn run_scalar_recorded(&self) -> Result<SimulationReport, SimError> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("validate pins trace output to a fixed horizon");
        };
        let OutputSpec::Trace { every } = self.spec.output else {
            unreachable!("scalar-recorded dispatch requires trace output");
        };
        let mut rng = StdRng::seed_from_u64(self.seeds().seed(0));
        let (trace, potential, estimate) = match self.kernel_spec() {
            KernelSpec::Node(params) => {
                let mut process = NodeModel::new(&self.graph, self.xi0.clone(), params)?;
                let trace = trace_potential(&mut process, &mut rng, steps, every);
                let state = process.state();
                (trace, state.potential_pi(), state.weighted_average())
            }
            KernelSpec::Edge(params) => {
                let mut process = EdgeModel::new(&self.graph, self.xi0.clone(), params)?;
                let trace = trace_potential(&mut process, &mut rng, steps, every);
                let state = process.state();
                (trace, state.potential_pi(), state.weighted_average())
            }
        };
        Ok(SimulationReport {
            engine: Engine::ScalarRecorded,
            trials: vec![TrialResult {
                steps,
                converged: false,
                potential,
                estimate,
                winner: None,
                mutations: 0,
            }],
            trace: Some(trace),
        })
    }

    fn converge_config(&self) -> ConvergeConfig {
        let StopSpec::Converge {
            epsilon,
            rule,
            potential,
            budget,
        } = self.spec.stop
        else {
            unreachable!("converge dispatch requires a converge stop")
        };
        ConvergeConfig::new(epsilon, budget)
            .with_stop(match rule {
                StopRuleSpec::Exact => StopRule::Exact,
                StopRuleSpec::Block => StopRule::Block,
            })
            .with_potential(potential.kind())
            .with_check_every(self.spec.check_every)
            .with_threads(self.spec.threads)
    }

    /// The checkpointable streaming window behind this scenario's run —
    /// `Some` exactly when the scenario dispatches to
    /// [`Engine::StaticConverge`] (static averaging, `stop converge`,
    /// exact tier), `None` for every other engine. Driving the window to
    /// completion and assembling with
    /// [`Simulation::report_from_window`] reproduces
    /// [`Simulation::run`]'s report bit for bit; between block rounds
    /// the window can be checkpointed (`od_core::WindowCheckpoint`) and
    /// resumed via [`Simulation::converge_window_resumed`].
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] if the engine rejects the scenario.
    pub fn converge_window(&self) -> Result<Option<ConvergeWindow<'_>>, SimError> {
        if self.engine() != Engine::StaticConverge {
            return Ok(None);
        }
        Ok(Some(ConvergeWindow::new(
            &self.graph,
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
            self.spec.resolved_batch(),
            self.converge_config(),
        )?))
    }

    /// Like [`Simulation::converge_window`], but resumed from a
    /// checkpoint captured from the *same* scenario.
    ///
    /// # Errors
    ///
    /// [`SimError::Core`] wrapping `CoreError::Checkpoint` when the
    /// checkpoint does not belong to this scenario.
    pub fn converge_window_resumed(
        &self,
        checkpoint: &WindowCheckpoint,
    ) -> Result<Option<ConvergeWindow<'_>>, SimError> {
        if self.engine() != Engine::StaticConverge {
            return Ok(None);
        }
        Ok(Some(ConvergeWindow::restore(
            &self.graph,
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
            self.spec.resolved_batch(),
            self.converge_config(),
            checkpoint,
        )?))
    }

    /// Assembles a finished window's reports into the
    /// [`SimulationReport`] that [`Simulation::run`] would have
    /// returned for this scenario.
    pub fn report_from_window(&self, reports: &[ConvergenceReport]) -> SimulationReport {
        SimulationReport {
            engine: Engine::StaticConverge,
            trials: reports
                .iter()
                .map(|r| TrialResult::from_convergence(r, 0))
                .collect(),
            trace: None,
        }
    }

    fn run_static_converge(&self) -> Result<Vec<TrialResult>, SimError> {
        let reports = run_converge_streaming(
            &self.graph,
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
            self.spec.resolved_batch(),
            self.converge_config(),
        )?;
        Ok(reports
            .iter()
            .map(|r| TrialResult::from_convergence(r, 0))
            .collect())
    }

    fn run_static_steps(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("steps dispatch requires a steps stop")
        };
        let spec = self.kernel_spec();
        let trials = monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                let mut batch = ReplicaBatch::new(&self.graph, spec, &self.xi0, chunk)
                    .expect("assemble validated the scenario");
                batch.step_many(steps);
                (0..chunk.len())
                    .map(|r| TrialResult {
                        steps,
                        converged: false,
                        potential: batch.replica_potential_pi(r),
                        estimate: batch.replica_weighted_average(r),
                        winner: None,
                        mutations: 0,
                    })
                    .collect()
            },
        );
        Ok(trials)
    }

    fn run_dynamic_converge(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Converge {
            epsilon, budget, ..
        } = self.spec.stop
        else {
            unreachable!("converge dispatch requires a converge stop")
        };
        let spec = self.kernel_spec();
        let (churn, steps_per_epoch, churn_seed) = self.churn_parts();
        let max_epochs = budget / steps_per_epoch;
        let trials: Vec<Result<TrialResult, od_core::CoreError>> = monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                // One churn stream per scenario: every chunk replays the
                // same topology trajectory from `churn_seed`, so trial
                // results are independent of the chunking.
                let run = || {
                    let mut batch = DynamicReplicaBatch::new(
                        DynamicGraph::new(self.graph.clone()),
                        spec,
                        &self.xi0,
                        chunk,
                        churn.clone(),
                        churn_seed,
                    )?;
                    // Inner threads pinned to 1: the runner already
                    // parallelises across chunks.
                    let reports =
                        batch.run_until_converged(steps_per_epoch, max_epochs, epsilon, 1)?;
                    let mutations = batch.mutations();
                    Ok(reports
                        .iter()
                        .map(|r| TrialResult::from_convergence(r, mutations))
                        .collect::<Vec<_>>())
                };
                match run() {
                    Ok(results) => results.into_iter().map(Ok).collect(),
                    Err(e) => chunk.iter().map(|_| Err(clone_err(&e))).collect(),
                }
            },
        );
        trials
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(SimError::Core)
    }

    fn run_dynamic_steps(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("steps dispatch requires a steps stop")
        };
        let spec = self.kernel_spec();
        let (churn, steps_per_epoch, churn_seed) = self.churn_parts();
        let epochs = steps / steps_per_epoch;
        let trials: Vec<Result<TrialResult, od_core::CoreError>> = monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                let run = || {
                    let mut batch = DynamicReplicaBatch::new(
                        DynamicGraph::new(self.graph.clone()),
                        spec,
                        &self.xi0,
                        chunk,
                        churn.clone(),
                        churn_seed,
                    )?;
                    for _ in 0..epochs {
                        batch.step_epoch(steps_per_epoch)?;
                    }
                    Ok((0..chunk.len())
                        .map(|r| TrialResult {
                            steps,
                            converged: false,
                            potential: batch.replica_potential_pi(r),
                            estimate: batch.replica_weighted_average(r),
                            winner: None,
                            mutations: batch.mutations(),
                        })
                        .collect::<Vec<_>>())
                };
                match run() {
                    Ok(results) => results.into_iter().map(Ok).collect(),
                    Err(e) => chunk.iter().map(|_| Err(clone_err(&e))).collect(),
                }
            },
        );
        trials
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(SimError::Core)
    }

    fn run_voter_consensus(&self) -> Vec<TrialResult> {
        let StopSpec::Consensus { budget } = self.spec.stop else {
            unreachable!("consensus dispatch requires a consensus stop")
        };
        monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                let mut batch = VoterBatch::new(&self.graph, &self.opinions0, chunk)
                    .expect("assemble validated the scenario");
                let reports = batch.run_to_consensus(budget, self.spec.check_every, 1);
                reports
                    .iter()
                    .map(|r| TrialResult {
                        steps: r.steps,
                        converged: r.winner.is_some(),
                        potential: f64::NAN,
                        estimate: f64::NAN,
                        winner: r.winner,
                        mutations: 0,
                    })
                    .collect()
            },
        )
    }

    fn run_voter_steps(&self) -> Vec<TrialResult> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("steps dispatch requires a steps stop")
        };
        monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                let mut batch = VoterBatch::new(&self.graph, &self.opinions0, chunk)
                    .expect("assemble validated the scenario");
                batch.step_many(steps);
                (0..chunk.len())
                    .map(|r| {
                        let consensus = batch.replica_is_consensus(r);
                        TrialResult {
                            steps,
                            converged: consensus,
                            potential: f64::NAN,
                            estimate: f64::NAN,
                            winner: consensus.then(|| batch.replica_opinions(r)[0]),
                            mutations: 0,
                        }
                    })
                    .collect()
            },
        )
    }

    fn run_dynamic_voter(&self) -> Result<Vec<TrialResult>, SimError> {
        let budget = match self.spec.stop {
            StopSpec::Consensus { budget } => budget,
            StopSpec::Steps { steps } => steps,
            StopSpec::Converge { .. } | StopSpec::FixedPoint { .. } => {
                unreachable!("validate rejects voter + converge/fixed_point")
            }
        };
        let stop_at_consensus = matches!(self.spec.stop, StopSpec::Consensus { .. });
        let (churn, steps_per_epoch, churn_seed) = self.churn_parts();
        // Consensus is checked at epoch boundaries (an O(1) discord
        // screen plus an all-equal scan), so stopping times are
        // epoch-granular — exactly like the per-trial kernel loop this
        // batched driver replaced.
        let max_epochs = budget / steps_per_epoch;
        let trials: Vec<Result<TrialResult, od_core::CoreError>> = monte_carlo_batched_threads(
            self.spec.replicas,
            self.seeds(),
            self.spec.resolved_batch(),
            self.spec.threads,
            |_, chunk| {
                let run = || -> Result<Vec<TrialResult>, od_core::CoreError> {
                    let mut batch = DynamicVoterBatch::new(
                        DynamicGraph::new(self.graph.clone()),
                        &self.opinions0,
                        chunk,
                        churn.clone(),
                        churn_seed,
                    )?;
                    if stop_at_consensus {
                        let reports = batch.run_to_consensus(steps_per_epoch, max_epochs, 1)?;
                        Ok(reports
                            .iter()
                            .map(|r| TrialResult {
                                steps: r.steps,
                                converged: r.winner.is_some(),
                                potential: f64::NAN,
                                estimate: f64::NAN,
                                winner: r.winner,
                                mutations: r.mutations,
                            })
                            .collect())
                    } else {
                        for _ in 0..max_epochs {
                            batch.step_epoch(steps_per_epoch)?;
                        }
                        Ok((0..chunk.len())
                            .map(|r| {
                                let consensus = batch.replica_is_consensus(r);
                                TrialResult {
                                    steps: batch.time(),
                                    converged: consensus,
                                    potential: f64::NAN,
                                    estimate: f64::NAN,
                                    winner: consensus.then(|| batch.replica_opinions(r)[0]),
                                    mutations: batch.mutations(),
                                }
                            })
                            .collect())
                    }
                };
                match run() {
                    Ok(results) => results.into_iter().map(Ok).collect(),
                    Err(e) => chunk.iter().map(|_| Err(clone_err(&e))).collect(),
                }
            },
        );
        trials
            .into_iter()
            .collect::<Result<Vec<_>, _>>()
            .map_err(SimError::Core)
    }

    /// The synchronous models (degroot, fj, weighted_median) are
    /// deterministic, so this engine runs exactly one trial (validate
    /// pins `replicas 1`). `potential` reports the final round's largest
    /// single-node movement — the quantity the `fixed_point` stop
    /// thresholds — and `estimate` the arithmetic mean of the final
    /// values.
    fn run_sync_rounds(&self) -> Result<Vec<TrialResult>, SimError> {
        let model = self
            .spec
            .model
            .sync_model()
            .expect("sync-rounds dispatch requires a sync model");
        let mut kernel = od_core::SyncKernel::new(&self.graph, self.xi0.clone(), model)
            .map_err(SimError::Core)?;
        let (rounds, converged, last_delta) = match self.spec.stop {
            StopSpec::Steps { steps } => {
                let mut last_delta = 0.0;
                for _ in 0..steps {
                    last_delta = kernel.round();
                }
                (kernel.rounds(), false, last_delta)
            }
            StopSpec::FixedPoint { epsilon, budget } => {
                let mut last_delta = f64::NAN;
                let mut converged = false;
                while kernel.rounds() < budget {
                    last_delta = kernel.round();
                    if last_delta <= epsilon {
                        converged = true;
                        break;
                    }
                }
                (kernel.rounds(), converged, last_delta)
            }
            StopSpec::Consensus { .. } | StopSpec::Converge { .. } => {
                unreachable!("validate pins sync models to steps/fixed_point stops")
            }
        };
        let n = self.graph.n() as f64;
        let estimate = kernel.values().iter().sum::<f64>() / n;
        Ok(vec![TrialResult {
            steps: rounds,
            converged,
            potential: last_delta,
            estimate,
            winner: None,
            mutations: 0,
        }])
    }

    /// The lane tier runs all replicas as one lane-major batch, so the
    /// `batch`/`threads` chunking knobs do not apply; lane `j` draws its
    /// private randomness from trial seed `j`, and the shared step
    /// schedule is a deterministic function of the whole seed set.
    #[cfg(feature = "lane")]
    fn run_lane_steps(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("steps dispatch requires a steps stop")
        };
        let mut batch = od_core::LaneReplicaBatch::new(
            &self.graph,
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
        )?;
        batch.step_many(steps);
        Ok((0..batch.lanes())
            .map(|r| TrialResult {
                steps,
                converged: false,
                potential: batch.replica_potential_pi(r),
                estimate: batch.replica_weighted_average(r),
                winner: None,
                mutations: 0,
            })
            .collect())
    }

    #[cfg(feature = "lane")]
    fn run_lane_converge(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Converge {
            epsilon, budget, ..
        } = self.spec.stop
        else {
            unreachable!("converge dispatch requires a converge stop")
        };
        // validate() pinned rule=block and potential=pi for lane specs.
        let mut batch = od_core::LaneReplicaBatch::new(
            &self.graph,
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
        )?;
        let reports = batch.run_until_converged(epsilon, budget, self.spec.check_every)?;
        Ok(reports
            .iter()
            .map(|r| TrialResult::from_convergence(r, 0))
            .collect())
    }

    #[cfg(feature = "lane")]
    fn run_dynamic_lane_steps(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Steps { steps } = self.spec.stop else {
            unreachable!("steps dispatch requires a steps stop")
        };
        let (churn, steps_per_epoch, churn_seed) = self.churn_parts();
        let epochs = steps / steps_per_epoch;
        let mut batch = od_core::DynamicLaneReplicaBatch::new(
            DynamicGraph::new(self.graph.clone()),
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
            churn,
            churn_seed,
        )?;
        for _ in 0..epochs {
            batch.step_epoch(steps_per_epoch)?;
        }
        Ok((0..batch.lanes())
            .map(|r| TrialResult {
                steps,
                converged: false,
                potential: batch.replica_potential_pi(r),
                estimate: batch.replica_weighted_average(r),
                winner: None,
                mutations: batch.mutations(),
            })
            .collect())
    }

    #[cfg(feature = "lane")]
    fn run_dynamic_lane_converge(&self) -> Result<Vec<TrialResult>, SimError> {
        let StopSpec::Converge {
            epsilon, budget, ..
        } = self.spec.stop
        else {
            unreachable!("converge dispatch requires a converge stop")
        };
        let (churn, steps_per_epoch, churn_seed) = self.churn_parts();
        let max_epochs = budget / steps_per_epoch;
        let mut batch = od_core::DynamicLaneReplicaBatch::new(
            DynamicGraph::new(self.graph.clone()),
            self.kernel_spec(),
            &self.xi0,
            &self.trial_seeds(),
            churn,
            churn_seed,
        )?;
        let reports = batch.run_until_converged(steps_per_epoch, max_epochs, epsilon)?;
        let mutations = batch.mutations();
        Ok(reports
            .iter()
            .map(|r| TrialResult::from_convergence(r, mutations))
            .collect())
    }
}

/// `CoreError` is `Clone`; this free function just keeps the closure
/// bodies tidy where one chunk-level error fans out to its trials.
fn clone_err(e: &od_core::CoreError) -> od_core::CoreError {
    e.clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::{ChurnModelSpec, ChurnSpec, GraphSpec, InitSpec, PotentialSpec};

    fn converge_spec() -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(
            ModelSpec::Node {
                alpha: 0.5,
                k: 2,
                lazy: false,
            },
            GraphSpec::Complete { n: 12 },
            0,
        );
        spec.replicas = 5;
        spec.seed = 99;
        spec.stop = StopSpec::Converge {
            epsilon: 1e-8,
            rule: StopRuleSpec::Exact,
            potential: PotentialSpec::Pi,
            budget: 1_000_000,
        };
        spec
    }

    #[test]
    fn dispatch_table() {
        let mut spec = converge_spec();
        assert_eq!(
            Simulation::from_spec(&spec).unwrap().engine(),
            Engine::StaticConverge
        );
        spec.stop = StopSpec::Steps { steps: 100 };
        assert_eq!(
            Simulation::from_spec(&spec).unwrap().engine(),
            Engine::StaticSteps
        );
        spec.replicas = 1;
        spec.output = OutputSpec::Trace { every: 10 };
        assert_eq!(
            Simulation::from_spec(&spec).unwrap().engine(),
            Engine::ScalarRecorded
        );
        spec.output = OutputSpec::Reports;
        spec.replicas = 5;
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 2 },
            steps_per_epoch: 10,
            seed: 3,
        });
        assert_eq!(
            Simulation::from_spec(&spec).unwrap().engine(),
            Engine::DynamicSteps
        );
        spec.stop = StopSpec::Converge {
            epsilon: 1e-8,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 1_000,
        };
        assert_eq!(
            Simulation::from_spec(&spec).unwrap().engine(),
            Engine::DynamicConverge
        );
        let mut voter = ScenarioSpec::new(ModelSpec::Voter, GraphSpec::Complete { n: 8 }, 100);
        assert_eq!(
            Simulation::from_spec(&voter).unwrap().engine(),
            Engine::VoterSteps
        );
        voter.stop = StopSpec::Consensus { budget: 100_000 };
        assert_eq!(
            Simulation::from_spec(&voter).unwrap().engine(),
            Engine::VoterConsensus
        );
        voter.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 1 },
            steps_per_epoch: 10,
            seed: 1,
        });
        assert_eq!(
            Simulation::from_spec(&voter).unwrap().engine(),
            Engine::DynamicVoter
        );
    }

    #[test]
    fn static_converge_matches_direct_engine() {
        // The scenario path must be the direct ReplicaBatch call, bit for
        // bit, per seed.
        let spec = converge_spec();
        let sim = Simulation::from_spec(&spec).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.engine, Engine::StaticConverge);
        assert_eq!(report.converged_count(), 5);

        let mut direct =
            ReplicaBatch::new(sim.graph(), sim.kernel_spec(), &sim.xi0, &sim.trial_seeds())
                .unwrap();
        let reports = direct.run_until_converged(sim.converge_config()).unwrap();
        for (trial, reference) in report.trials.iter().zip(&reports) {
            assert_eq!(trial.steps, reference.steps);
            assert_eq!(trial.potential.to_bits(), reference.potential.to_bits());
            assert_eq!(
                trial.estimate.to_bits(),
                reference.weighted_average.to_bits()
            );
        }
        // Capacity and thread overrides never change results.
        for (batch, threads) in [(1usize, 1usize), (2, 3), (64, 2)] {
            let mut spec = converge_spec();
            spec.batch = batch;
            spec.threads = threads;
            let again = Simulation::from_spec(&spec).unwrap().run().unwrap();
            assert_eq!(again.trials, report.trials, "batch={batch}");
        }
    }

    #[test]
    fn voter_consensus_matches_direct_engine() {
        let mut spec = ScenarioSpec::new(ModelSpec::Voter, GraphSpec::Complete { n: 8 }, 0);
        spec.replicas = 6;
        spec.seed = 5;
        spec.init = InitSpec::Opinions { levels: 4 };
        spec.stop = StopSpec::Consensus { budget: 200_000 };
        let sim = Simulation::from_spec(&spec).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.engine, Engine::VoterConsensus);
        assert_eq!(report.converged_count(), 6);

        let mut direct = VoterBatch::new(sim.graph(), &sim.opinions0, &sim.trial_seeds()).unwrap();
        let reports = direct.run_to_consensus(200_000, 0, 1);
        for (trial, reference) in report.trials.iter().zip(&reports) {
            assert_eq!(trial.steps, reference.steps);
            assert_eq!(trial.winner, reference.winner);
        }
    }

    #[test]
    fn dynamic_converge_matches_direct_engine() {
        let mut spec = converge_spec();
        spec.graph = GraphSpec::Torus { rows: 4, cols: 4 };
        spec.replicas = 4;
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 2 },
            steps_per_epoch: 16,
            seed: 77,
        });
        spec.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 16 * 2_000,
        };
        let sim = Simulation::from_spec(&spec).unwrap();
        let report = sim.run().unwrap();
        assert_eq!(report.engine, Engine::DynamicConverge);
        assert!(report.converged_count() > 0);
        assert!(report.max_mutations() > 0);

        let mut direct = DynamicReplicaBatch::new(
            DynamicGraph::new(sim.graph().clone()),
            sim.kernel_spec(),
            &sim.xi0,
            &sim.trial_seeds(),
            ChurnModel::edge_swap(2),
            77,
        )
        .unwrap();
        let reports = direct.run_until_converged(16, 2_000, 1e-9, 1).unwrap();
        for (trial, reference) in report.trials.iter().zip(&reports) {
            assert_eq!(trial.steps, reference.steps);
            assert_eq!(trial.converged, reference.converged);
        }
        // Chunking never changes dynamic results either (shared churn
        // stream per scenario). `mutations` is chunk metadata — how long
        // the trial's chunk kept churning — so it is excluded here.
        let mut solo = spec.clone();
        solo.batch = 1;
        let again = Simulation::from_spec(&solo).unwrap().run().unwrap();
        let strip = |trials: &[TrialResult]| {
            trials
                .iter()
                .map(|t| TrialResult { mutations: 0, ..*t })
                .collect::<Vec<_>>()
        };
        assert_eq!(strip(&again.trials), strip(&report.trials));
    }

    #[test]
    fn scalar_recorded_run_produces_a_trace() {
        let mut spec = ScenarioSpec::new(
            ModelSpec::Edge {
                alpha: 0.5,
                lazy: false,
            },
            GraphSpec::Cycle { n: 16 },
            2_000,
        );
        spec.output = OutputSpec::Trace { every: 500 };
        spec.seed = 11;
        let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
        assert_eq!(report.engine, Engine::ScalarRecorded);
        let trace = report.trace.as_ref().unwrap();
        assert_eq!(trace.len(), 1 + 4);
        assert_eq!(trace[0].0, 0);
        assert!(trace.last().unwrap().1 <= trace[0].1);
        assert_eq!(report.trials.len(), 1);
    }

    #[test]
    fn overrides_validate() {
        let spec = converge_spec();
        let sim = Simulation::from_spec(&spec).unwrap();
        assert!(sim.clone().with_initial_values(vec![1.0; 3]).is_err());
        assert!(sim.clone().with_opinions(vec![0; 12]).is_err());
        let replaced = sim
            .clone()
            .with_graph(od_graph::generators::complete(6).unwrap())
            .unwrap();
        assert_eq!(replaced.graph().n(), 6);
        // k > d_min is rejected at graph replacement, like the engines.
        assert!(sim
            .with_graph(od_graph::generators::path(6).unwrap())
            .is_err());
        // Zero replicas rejected before any engine runs.
        let mut bad = converge_spec();
        bad.replicas = 0;
        assert!(matches!(
            Simulation::from_spec(&bad),
            Err(SimError::Invalid(_))
        ));
        // An out-of-range indicator node is a proper error, not a silent
        // all-zero (= instantly "converged") initial state.
        let mut bad = converge_spec();
        bad.init = InitSpec::Indicator { node: 99 };
        assert!(matches!(
            Simulation::from_spec(&bad),
            Err(SimError::Invalid(_))
        ));
        bad.init = InitSpec::Indicator { node: 3 };
        assert!(Simulation::from_spec(&bad).is_ok());
    }

    #[test]
    fn dynamic_voter_runs_to_consensus() {
        let mut spec = ScenarioSpec::new(ModelSpec::Voter, GraphSpec::Complete { n: 8 }, 0);
        spec.replicas = 3;
        spec.seed = 21;
        spec.init = InitSpec::Distinct;
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 1 },
            steps_per_epoch: 8,
            seed: 5,
        });
        spec.stop = StopSpec::Consensus { budget: 8 * 50_000 };
        let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
        assert_eq!(report.engine, Engine::DynamicVoter);
        assert_eq!(report.converged_count(), 3);
        for trial in &report.trials {
            assert!(trial.winner.is_some());
            assert_eq!(trial.steps % 8, 0, "epoch-granular consensus time");
        }
    }

    #[test]
    fn lane_tier_dispatch_and_fallback() {
        // `tier lane` selects the lane engines when the feature is
        // compiled in and falls back to the exact engines otherwise —
        // the same spec stays runnable either way.
        let lane_on = cfg!(feature = "lane");
        let mut spec = converge_spec();
        spec.tier = crate::spec::TierSpec::Lane;
        spec.stop = StopSpec::Converge {
            epsilon: 1e-8,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 1_000_000,
        };
        let sim = Simulation::from_spec(&spec).unwrap();
        let expect = if lane_on {
            Engine::LaneConverge
        } else {
            Engine::StaticConverge
        };
        assert_eq!(sim.engine(), expect);
        let report = sim.run().unwrap();
        assert_eq!(report.engine, expect);
        assert_eq!(report.converged_count(), 5);
        for trial in &report.trials {
            assert!(trial.potential <= 1e-8);
            // The F estimate stays in the initial hull under both tiers.
            assert!((-1.0..=1.0).contains(&trial.estimate));
        }

        spec.stop = StopSpec::Steps { steps: 5_000 };
        let sim = Simulation::from_spec(&spec).unwrap();
        let expect = if lane_on {
            Engine::LaneSteps
        } else {
            Engine::StaticSteps
        };
        assert_eq!(sim.engine(), expect);
        let report = sim.run().unwrap();
        assert_eq!(report.engine, expect);
        assert_eq!(report.trials.len(), 5);
        assert!(report.trials.iter().all(|t| t.estimate.is_finite()));

        spec.graph = GraphSpec::Torus { rows: 4, cols: 4 };
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 2 },
            steps_per_epoch: 16,
            seed: 77,
        });
        spec.stop = StopSpec::Steps { steps: 16 * 50 };
        let sim = Simulation::from_spec(&spec).unwrap();
        let expect = if lane_on {
            Engine::DynamicLaneSteps
        } else {
            Engine::DynamicSteps
        };
        assert_eq!(sim.engine(), expect);
        let report = sim.run().unwrap();
        assert_eq!(report.engine, expect);
        assert!(report.max_mutations() > 0);

        spec.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 16 * 5_000,
        };
        let sim = Simulation::from_spec(&spec).unwrap();
        let expect = if lane_on {
            Engine::DynamicLaneConverge
        } else {
            Engine::DynamicConverge
        };
        assert_eq!(sim.engine(), expect);
        let report = sim.run().unwrap();
        assert_eq!(report.engine, expect);
        assert_eq!(report.converged_count(), 5);
        for trial in &report.trials {
            assert_eq!(trial.steps % 16, 0, "epoch-granular stopping");
        }
    }

    #[test]
    fn dynamic_voter_batch_pins_per_trial_loop() {
        // The batched dispatch must reproduce the retired per-trial
        // `DynamicVoterKernel` loop bit-for-bit, for every batch size and
        // thread count, in both stop modes.
        let mut spec = ScenarioSpec::new(ModelSpec::Voter, GraphSpec::Cycle { n: 10 }, 0);
        spec.replicas = 6;
        spec.seed = 77;
        spec.init = InitSpec::Distinct;
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::Rewire {
                rewires: 1,
                min_degree: 1,
            },
            steps_per_epoch: 16,
            seed: 13,
        });
        for stop in [
            StopSpec::Consensus {
                budget: 16 * 20_000,
            },
            StopSpec::Steps { steps: 16 * 25 },
        ] {
            spec.stop = stop;
            let sim = Simulation::from_spec(&spec).unwrap();
            // Per-trial reference: the exact loop `run_dynamic_voter` ran
            // before `DynamicVoterBatch` existed.
            let (churn, spe, churn_seed) = sim.churn_parts();
            let budget = match spec.stop {
                StopSpec::Consensus { budget } => budget,
                StopSpec::Steps { steps } => steps,
                StopSpec::Converge { .. } | StopSpec::FixedPoint { .. } => unreachable!(),
            };
            let stop_at_consensus = matches!(spec.stop, StopSpec::Consensus { .. });
            let max_epochs = budget / spe;
            let reference: Vec<TrialResult> = (0..spec.replicas as u64)
                .map(|i| {
                    let mut kernel = od_core::DynamicVoterKernel::new(
                        DynamicGraph::new(sim.graph().clone()),
                        sim.opinions0.clone(),
                        churn.clone(),
                        churn_seed,
                    )
                    .unwrap();
                    let mut rng = StdRng::seed_from_u64(sim.seeds().seed(i));
                    while kernel.epoch() < max_epochs
                        && !(stop_at_consensus && kernel.is_consensus())
                    {
                        kernel.step_epoch(spe, &mut rng).unwrap();
                    }
                    let consensus = kernel.is_consensus();
                    TrialResult {
                        steps: kernel.time(),
                        converged: consensus,
                        potential: f64::NAN,
                        estimate: f64::NAN,
                        winner: consensus.then(|| kernel.opinions()[0]),
                        mutations: kernel.mutations(),
                    }
                })
                .collect();
            for (batch, threads) in [(0usize, 1usize), (2, 1), (1, 3), (4, 2)] {
                let mut run_spec = spec.clone();
                run_spec.batch = batch;
                run_spec.threads = threads;
                let report = Simulation::from_spec(&run_spec).unwrap().run().unwrap();
                assert_eq!(report.engine, Engine::DynamicVoter);
                assert_eq!(report.trials.len(), reference.len());
                for (got, want) in report.trials.iter().zip(&reference) {
                    assert_eq!(got.steps, want.steps, "batch {batch}, threads {threads}");
                    assert_eq!(got.converged, want.converged);
                    assert_eq!(got.winner, want.winner);
                    assert_eq!(got.mutations, want.mutations);
                }
            }
        }
    }

    fn sync_spec(model: ModelSpec) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(model, GraphSpec::Cycle { n: 9 }, 0);
        spec.init = InitSpec::Linear { lo: 0.0, hi: 8.0 };
        spec.stop = StopSpec::FixedPoint {
            epsilon: 1e-12,
            budget: 200_000,
        };
        spec
    }

    #[test]
    fn sync_models_dispatch_to_sync_rounds() {
        for model in [
            ModelSpec::DeGroot { lazy: 0.5 },
            ModelSpec::Fj { alpha: 0.25 },
            ModelSpec::WeightedMedian,
        ] {
            let sim = Simulation::from_spec(&sync_spec(model)).unwrap();
            assert_eq!(sim.engine(), Engine::SyncRounds);
        }
    }

    #[test]
    fn sync_rounds_runs_to_fixed_point() {
        // Lazy DeGroot on a regular graph converges to the plain mean of
        // the start values; the single deterministic trial reports it.
        let report = Simulation::from_spec(&sync_spec(ModelSpec::DeGroot { lazy: 0.5 }))
            .unwrap()
            .run()
            .unwrap();
        assert_eq!(report.engine, Engine::SyncRounds);
        let [trial] = report.trials.as_slice() else {
            panic!("sync engine runs exactly one trial");
        };
        assert!(trial.converged);
        assert!(trial.potential <= 1e-12);
        assert!((trial.estimate - 4.0).abs() < 1e-8);
        assert_eq!(trial.winner, None);

        // A steps stop runs exactly that many rounds, never "converged".
        let mut spec = sync_spec(ModelSpec::DeGroot { lazy: 0.5 });
        spec.stop = StopSpec::Steps { steps: 17 };
        let report = Simulation::from_spec(&spec).unwrap().run().unwrap();
        assert_eq!(report.trials[0].steps, 17);
        assert!(!report.trials[0].converged);
    }

    #[test]
    fn sync_rounds_matches_direct_kernel() {
        let spec = sync_spec(ModelSpec::Fj { alpha: 0.25 });
        let sim = Simulation::from_spec(&spec).unwrap();
        let report = sim.run().unwrap();
        let mut kernel = od_core::SyncKernel::new(
            sim.graph(),
            sim.xi0.clone(),
            od_core::SyncModel::FriedkinJohnsen { alpha: 0.25 },
        )
        .unwrap();
        let (rounds, converged) = kernel.run(200_000, 1e-12).unwrap();
        assert_eq!(report.trials[0].steps, rounds);
        assert_eq!(report.trials[0].converged, converged);
        let mean = kernel.values().iter().sum::<f64>() / 9.0;
        assert_eq!(report.trials[0].estimate.to_bits(), mean.to_bits());
    }

    #[test]
    fn weighted_graphs_run_the_exact_engines() {
        // `weights uniform` flows through assemble into the graph…
        let mut spec = converge_spec();
        spec.weights = crate::spec::WeightSpec::Uniform {
            lo: 0.5,
            hi: 2.0,
            seed: 3,
        };
        let sim = Simulation::from_spec(&spec).unwrap();
        assert!(sim.graph().is_weighted());
        // …and a `tier lane` spelling falls back to the exact engines
        // whether or not the lane feature is compiled in.
        spec.tier = crate::spec::TierSpec::Lane;
        spec.stop = StopSpec::Converge {
            epsilon: 1e-8,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 1_000_000,
        };
        let sim = Simulation::from_spec(&spec).unwrap();
        assert_eq!(sim.engine(), Engine::StaticConverge);
        let report = sim.run().unwrap();
        assert_eq!(report.converged_count(), 5);
    }
}
