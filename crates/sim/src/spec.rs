//! The declarative scenario description and its hand-rolled text format.
//!
//! A [`ScenarioSpec`] names one point in the paper's experiment space —
//! model × topology (static or churned) × initial state × replicas ×
//! stopping rule — without naming an engine. [`crate::Simulation`] picks
//! the optimal engine from the spec (see the dispatch table in the crate
//! docs and `README.md`).
//!
//! # Text format
//!
//! One `key value` pair per line; `#` starts a comment; keys may appear
//! in any order; structured values use `sub=val` tokens. The environment
//! vendors no serde, so the format is hand-rolled; [`ScenarioSpec::parse`]
//! and the [`std::fmt::Display`] impl round-trip exactly
//! (`parse ∘ to_string = id`, property-gated in `tests/spec_prop.rs`).
//!
//! ```text
//! # NodeModel ε-convergence sweep on the 6-cube.
//! scenario t22-hypercube
//! model node alpha=0.5 k=2 lazy=false
//! graph hypercube dim=6
//! init pm_one
//! replicas 30
//! seed 42
//! stop converge eps=0.000000001 rule=exact potential=pi budget=2000000
//! ```

use od_graph::{ChurnModel, Graph, GraphError};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::HashMap;
use std::fmt;

/// Errors raised while parsing, validating or running a scenario.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum SimError {
    /// A line of the text format could not be parsed.
    Parse {
        /// 1-based line number.
        line: usize,
        /// What went wrong.
        message: String,
    },
    /// The spec is structurally well-formed but semantically invalid
    /// (zero replicas, bad ε, model/init mismatch, …).
    Invalid(String),
    /// Graph construction or churn failed.
    Graph(GraphError),
    /// An engine rejected the scenario.
    Core(od_core::CoreError),
}

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::Parse { line, message } => write!(f, "parse error on line {line}: {message}"),
            SimError::Invalid(message) => write!(f, "invalid scenario: {message}"),
            SimError::Graph(err) => write!(f, "graph error: {err}"),
            SimError::Core(err) => write!(f, "engine error: {err}"),
        }
    }
}

impl std::error::Error for SimError {}

impl From<GraphError> for SimError {
    fn from(err: GraphError) -> Self {
        SimError::Graph(err)
    }
}

impl From<od_core::CoreError> for SimError {
    fn from(err: od_core::CoreError) -> Self {
        SimError::Core(err)
    }
}

/// Which averaging process (or baseline) a scenario runs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ModelSpec {
    /// The NodeModel (Definition 2.1).
    Node {
        /// Self-weight `α ∈ [0, 1)`.
        alpha: f64,
        /// Neighbour sample size `k ≥ 1`.
        k: usize,
        /// Section 4's lazy variant (skip each step w.p. 1/2).
        lazy: bool,
    },
    /// The EdgeModel (Definition 2.3).
    Edge {
        /// Self-weight `α ∈ [0, 1)`.
        alpha: f64,
        /// Section 4's lazy variant.
        lazy: bool,
    },
    /// The discrete voter model (§2 baseline).
    Voter,
    /// Synchronous lazy DeGroot rounds (`od_core::SyncModel::DeGroot`) —
    /// deterministic repeated averaging, the baseline the paper's random
    /// `F` is compared against. Runs weighted and directed graphs.
    DeGroot {
        /// Laziness `ℓ ∈ [0, 1)`: `x ← (1−ℓ)·P x + ℓ·x`.
        lazy: f64,
    },
    /// Synchronous Friedkin–Johnsen rounds
    /// (`od_core::SyncModel::FriedkinJohnsen`): the initial values are
    /// the fixed private anchors. Runs weighted and directed graphs.
    Fj {
        /// Uniform stubbornness `α ∈ (0, 1]`.
        alpha: f64,
    },
    /// Synchronous weighted-median dynamics
    /// (`od_core::SyncModel::WeightedMedian`): each node moves to the
    /// weighted median of its out-neighbourhood.
    WeightedMedian,
}

impl ModelSpec {
    /// Whether this is a continuous averaging process (vs the voter).
    pub fn is_averaging(&self) -> bool {
        !matches!(self, ModelSpec::Voter)
    }

    /// Whether this is a deterministic synchronous-rounds model
    /// (`degroot`, `fj`, `weighted_median`) — dispatched to
    /// `od_core::SyncKernel` instead of an asynchronous engine.
    pub fn is_sync(&self) -> bool {
        matches!(
            self,
            ModelSpec::DeGroot { .. } | ModelSpec::Fj { .. } | ModelSpec::WeightedMedian
        )
    }

    /// The sync-kernel model for the synchronous-rounds variants
    /// (`None` for the asynchronous models).
    pub fn sync_model(&self) -> Option<od_core::SyncModel> {
        match *self {
            ModelSpec::DeGroot { lazy } => Some(od_core::SyncModel::DeGroot { lazy }),
            ModelSpec::Fj { alpha } => Some(od_core::SyncModel::FriedkinJohnsen { alpha }),
            ModelSpec::WeightedMedian => Some(od_core::SyncModel::WeightedMedian),
            _ => None,
        }
    }

    /// The kernel spec for the averaging models.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from `od-core`.
    pub fn kernel_spec(&self) -> Result<od_core::KernelSpec, SimError> {
        let lazify = |lazy: bool| {
            if lazy {
                od_core::Laziness::Lazy
            } else {
                od_core::Laziness::Active
            }
        };
        match *self {
            ModelSpec::Node { alpha, k, lazy } => Ok(od_core::KernelSpec::Node(
                od_core::NodeModelParams::new(alpha, k)?.with_laziness(lazify(lazy)),
            )),
            ModelSpec::Edge { alpha, lazy } => Ok(od_core::KernelSpec::Edge(
                od_core::EdgeModelParams::new(alpha)?.with_laziness(lazify(lazy)),
            )),
            ModelSpec::Voter => Err(SimError::Invalid(
                "the voter model has no averaging kernel spec".into(),
            )),
            ModelSpec::DeGroot { .. } | ModelSpec::Fj { .. } | ModelSpec::WeightedMedian => {
                Err(SimError::Invalid(
                    "synchronous models run through the sync kernel, not an \
                     asynchronous kernel spec"
                        .into(),
                ))
            }
        }
    }
}

/// A graph generator plus its parameters — every family `od-graph`
/// provides — or a real-world edge-list file ([`GraphSpec::File`]).
/// Random families carry their own construction seed so a scenario
/// names one reproducible instance.
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings match the od-graph generators 1:1
pub enum GraphSpec {
    Cycle {
        n: usize,
    },
    Path {
        n: usize,
    },
    Complete {
        n: usize,
    },
    Star {
        n: usize,
    },
    CompleteBipartite {
        a: usize,
        b: usize,
    },
    Grid {
        rows: usize,
        cols: usize,
    },
    Torus {
        rows: usize,
        cols: usize,
    },
    Hypercube {
        dim: usize,
    },
    BinaryTree {
        levels: usize,
    },
    Petersen,
    Barbell {
        k: usize,
    },
    Lollipop {
        k: usize,
        tail: usize,
    },
    Gnp {
        n: usize,
        p: f64,
        seed: u64,
    },
    Gnm {
        n: usize,
        m: usize,
        seed: u64,
    },
    RandomRegular {
        n: usize,
        d: usize,
        seed: u64,
    },
    WattsStrogatz {
        n: usize,
        k: usize,
        p: f64,
        seed: u64,
    },
    BarabasiAlbert {
        n: usize,
        m: usize,
        seed: u64,
    },
    /// A real-world graph loaded from an edge-list file (`graph
    /// file=<path> [directed=true]`): `u v` or `u v w` lines, comma- or
    /// whitespace-separated, `#` comments ignored. A third column
    /// attaches per-edge weights. Path-validated at parse; the IO
    /// happens when the simulation is assembled, like
    /// [`InitSpec::File`].
    File {
        /// Path to the edge list. Must be a single `#`-free token (no
        /// whitespace) so the line-based text format round-trips.
        path: String,
        /// Whether lines are directed `(tail, head)` arcs. Directed
        /// graphs run the synchronous-rounds models only.
        directed: bool,
    },
}

impl GraphSpec {
    /// Builds the named graph instance. For [`GraphSpec::File`] use
    /// [`GraphSpec::realize`], which performs the IO.
    ///
    /// # Errors
    ///
    /// The underlying generator's error, or
    /// [`GraphError::InvalidParameter`] for [`GraphSpec::File`].
    pub fn build(&self) -> Result<Graph, GraphError> {
        use od_graph::generators as g;
        match *self {
            GraphSpec::Cycle { n } => g::cycle(n),
            GraphSpec::Path { n } => g::path(n),
            GraphSpec::Complete { n } => g::complete(n),
            GraphSpec::Star { n } => g::star(n),
            GraphSpec::CompleteBipartite { a, b } => g::complete_bipartite(a, b),
            GraphSpec::Grid { rows, cols } => g::grid2d(rows, cols, false),
            GraphSpec::Torus { rows, cols } => g::torus(rows, cols),
            GraphSpec::Hypercube { dim } => g::hypercube(dim),
            GraphSpec::BinaryTree { levels } => g::binary_tree(levels),
            GraphSpec::Petersen => Ok(g::petersen()),
            GraphSpec::Barbell { k } => g::barbell(k),
            GraphSpec::Lollipop { k, tail } => g::lollipop(k, tail),
            GraphSpec::Gnp { n, p, seed } => {
                g::gnp_connected(n, p, &mut StdRng::seed_from_u64(seed))
            }
            GraphSpec::Gnm { n, m, seed } => {
                g::gnm_connected(n, m, &mut StdRng::seed_from_u64(seed))
            }
            GraphSpec::RandomRegular { n, d, seed } => {
                g::random_regular(n, d, &mut StdRng::seed_from_u64(seed))
            }
            GraphSpec::WattsStrogatz { n, k, p, seed } => {
                g::watts_strogatz(n, k, p, &mut StdRng::seed_from_u64(seed))
            }
            GraphSpec::BarabasiAlbert { n, m, seed } => {
                g::barabasi_albert(n, m, &mut StdRng::seed_from_u64(seed))
            }
            GraphSpec::File { .. } => Err(GraphError::InvalidParameter(
                "file graphs load through GraphSpec::realize (the edge-list IO step)".into(),
            )),
        }
    }

    /// Builds the graph, performing the edge-list IO for
    /// [`GraphSpec::File`] — the resolve step [`crate::Simulation`] and
    /// the sweep runner call.
    ///
    /// # Errors
    ///
    /// [`SimError::Graph`] from the generator, or [`SimError::Invalid`]
    /// naming the file (and line) for IO failures and malformed edge
    /// lists.
    pub fn realize(&self) -> Result<Graph, SimError> {
        match self {
            GraphSpec::File { path, directed } => load_edge_list_file(path, *directed),
            spec => Ok(spec.build()?),
        }
    }
}

impl fmt::Display for GraphSpec {
    /// The graph's text-format tokens without the leading `graph` key
    /// (e.g. `cycle n=16`) — the `graph` line of [`ScenarioSpec`] and,
    /// with spaces swapped for `:`, the sweep grammar's graph
    /// descriptors (`cycle:n=16`).
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphSpec::Cycle { n } => write!(f, "cycle n={n}"),
            GraphSpec::Path { n } => write!(f, "path n={n}"),
            GraphSpec::Complete { n } => write!(f, "complete n={n}"),
            GraphSpec::Star { n } => write!(f, "star n={n}"),
            GraphSpec::CompleteBipartite { a, b } => {
                write!(f, "complete_bipartite a={a} b={b}")
            }
            GraphSpec::Grid { rows, cols } => write!(f, "grid rows={rows} cols={cols}"),
            GraphSpec::Torus { rows, cols } => write!(f, "torus rows={rows} cols={cols}"),
            GraphSpec::Hypercube { dim } => write!(f, "hypercube dim={dim}"),
            GraphSpec::BinaryTree { levels } => write!(f, "binary_tree levels={levels}"),
            GraphSpec::Petersen => write!(f, "petersen"),
            GraphSpec::Barbell { k } => write!(f, "barbell k={k}"),
            GraphSpec::Lollipop { k, tail } => write!(f, "lollipop k={k} tail={tail}"),
            GraphSpec::Gnp { n, p, seed } => write!(f, "gnp n={n} p={p} seed={seed}"),
            GraphSpec::Gnm { n, m, seed } => write!(f, "gnm n={n} m={m} seed={seed}"),
            GraphSpec::RandomRegular { n, d, seed } => {
                write!(f, "random_regular n={n} d={d} seed={seed}")
            }
            GraphSpec::WattsStrogatz { n, k, p, seed } => {
                write!(f, "watts_strogatz n={n} k={k} p={p} seed={seed}")
            }
            GraphSpec::BarabasiAlbert { n, m, seed } => {
                write!(f, "barabasi_albert n={n} m={m} seed={seed}")
            }
            // The path rides in the variant token itself (the
            // `graph file=edges.csv` spelling); `directed` is printed
            // explicitly so the canonical form round-trips.
            GraphSpec::File { path, directed } => write!(f, "file={path} directed={directed}"),
        }
    }
}

/// Parses the tokens of a `graph` line (family name plus `key=val`
/// fields) — the crate-internal hook the sweep grammar's graph
/// descriptors reuse.
pub(crate) fn parse_graph_tokens(line: usize, rest: &[&str]) -> Result<GraphSpec, SimError> {
    parse::parse_graph(line, rest)
}

/// How per-edge weights are attached to a *generated* topology
/// (file graphs carry their weights in the file). The default
/// [`WeightSpec::Unit`] is not printed by the canonical form, so
/// existing unweighted scenario keys are unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub enum WeightSpec {
    /// Unit weights — no weight array; kernels take the historical
    /// bit-exact unweighted paths.
    #[default]
    Unit,
    /// One weight per undirected edge drawn i.i.d. uniform from
    /// `[lo, hi]` (`0 < lo ≤ hi`), in the canonical `u < v` edge order,
    /// from a dedicated RNG — every replica sees the same weighted
    /// instance (`weights uniform lo=.. hi=.. seed=..`).
    Uniform {
        /// Lower endpoint (strictly positive, so no zero-weight rows).
        lo: f64,
        /// Upper endpoint (`≥ lo`).
        hi: f64,
        /// Seed of the dedicated weight RNG.
        seed: u64,
    },
}

impl WeightSpec {
    /// Attaches the drawn weights to `graph` ([`WeightSpec::Unit`] is a
    /// no-op). Called once at [`crate::Simulation`] assembly, after the
    /// graph is realized.
    ///
    /// # Errors
    ///
    /// [`SimError::Graph`] if the graph rejects the weights (directed,
    /// or already carrying its own).
    pub fn apply(&self, graph: &mut Graph) -> Result<(), SimError> {
        let WeightSpec::Uniform { lo, hi, seed } = *self else {
            return Ok(());
        };
        let mut rng = StdRng::seed_from_u64(seed);
        let draws: Vec<f64> = (0..graph.m())
            .map(|_| lo + rng.gen::<f64>() * (hi - lo))
            .collect();
        graph.attach_weights(&draws)?;
        Ok(())
    }
}

/// The initial state distribution.
#[derive(Debug, Clone, PartialEq)]
pub enum InitSpec {
    /// Balanced ±1 values (exactly centered for even `n`, centered by
    /// subtraction otherwise) — the experiments' standard `ξ(0)`.
    PmOne,
    /// Linear ramp from `lo` (node 0) to `hi` (node n−1).
    Linear {
        /// Value at node 0.
        lo: f64,
        /// Value at node n−1.
        hi: f64,
    },
    /// Every node starts at `value`.
    Constant {
        /// The common initial value.
        value: f64,
    },
    /// `1.0` at `node`, `0.0` elsewhere (the duality unit vector).
    Indicator {
        /// The distinguished node.
        node: usize,
    },
    /// Voter: node `i` starts with opinion `i % levels` (`levels ≥ 1`).
    Opinions {
        /// Number of distinct opinions.
        levels: usize,
    },
    /// Voter: node `i` starts with its own opinion `i`.
    Distinct,
    /// Averaging values loaded from a text file: one finite float per
    /// line, blank lines and `#` comments ignored, exactly one value per
    /// node. The file is read when the simulation is assembled
    /// ([`crate::Simulation::from_spec`]), so the scenario file stays a
    /// self-contained description plus a data path.
    File {
        /// Path to the values file. Must be a single `#`-free token (no
        /// whitespace) so the line-based text format round-trips.
        path: String,
    },
}

impl InitSpec {
    /// Whether this initial state feeds an averaging process.
    pub fn is_averaging(&self) -> bool {
        !matches!(self, InitSpec::Opinions { .. } | InitSpec::Distinct)
    }

    /// The averaging initial values for an `n`-node graph.
    ///
    /// # Panics
    ///
    /// Panics on voter variants, on [`InitSpec::File`] (resolved with IO
    /// via [`load_init_file`] when the simulation is assembled), and on
    /// an out-of-range [`InitSpec::Indicator`] node (`Simulation`
    /// rejects all of these with a proper error before resolving
    /// values).
    pub fn values(&self, n: usize) -> Vec<f64> {
        match *self {
            InitSpec::PmOne => pm_one(n),
            InitSpec::Linear { lo, hi } => (0..n)
                .map(|i| {
                    if n == 1 {
                        lo
                    } else {
                        lo + (hi - lo) * i as f64 / (n - 1) as f64
                    }
                })
                .collect(),
            InitSpec::Constant { value } => vec![value; n],
            InitSpec::Indicator { node } => {
                assert!(node < n, "indicator node {node} out of range for {n} nodes");
                let mut v = vec![0.0; n];
                v[node] = 1.0;
                v
            }
            InitSpec::Opinions { .. } | InitSpec::Distinct => {
                panic!("voter init has no f64 values")
            }
            InitSpec::File { .. } => panic!("file init resolves through load_init_file"),
        }
    }

    /// The voter initial opinions for an `n`-node graph.
    ///
    /// # Panics
    ///
    /// Panics on averaging variants (guarded by
    /// [`ScenarioSpec::validate`]).
    pub fn opinions(&self, n: usize) -> Vec<u32> {
        match *self {
            InitSpec::Opinions { levels } => (0..n as u32).map(|i| i % levels as u32).collect(),
            InitSpec::Distinct => (0..n as u32).collect(),
            _ => panic!("averaging init has no opinions"),
        }
    }
}

/// Balanced ±1 initial values (exactly centered for even `n`; centered by
/// subtraction otherwise). The paper's bounds are scale-free in
/// `‖ξ(0)‖²`, and ±1 keeps `‖ξ‖² = n` so normalized variances are easy
/// to read. The single home of the experiments' standard `ξ(0)`.
pub fn pm_one(n: usize) -> Vec<f64> {
    let mut v: Vec<f64> = (0..n)
        .map(|i| if i % 2 == 0 { 1.0 } else { -1.0 })
        .collect();
    if n % 2 == 1 {
        let mean = v.iter().sum::<f64>() / n as f64;
        for x in &mut v {
            *x -= mean;
        }
    }
    v
}

/// How the topology evolves between epochs (omit for a static graph).
#[derive(Debug, Clone, PartialEq)]
pub struct ChurnSpec {
    /// The churn family and its parameters.
    pub model: ChurnModelSpec,
    /// Process steps per epoch (the churn cadence).
    pub steps_per_epoch: u64,
    /// Seed of the dedicated churn RNG: every replica of the scenario
    /// sees the same topology trajectory.
    pub seed: u64,
}

/// The churn families representable in the text format. Every
/// `od_graph::ChurnModel` has a spelling: the generative families carry
/// their parameters inline, and `ChurnModel::TemporalReplay` is named by
/// an edge-snapshot file ([`ChurnModelSpec::Replay`]).
#[derive(Debug, Clone, PartialEq)]
#[allow(missing_docs)] // field meanings match od_graph::ChurnModel 1:1
pub enum ChurnModelSpec {
    EdgeSwap {
        swaps: usize,
    },
    Rewire {
        rewires: usize,
        min_degree: usize,
    },
    GnpResample {
        p: f64,
        min_degree: usize,
    },
    /// A recorded topology trajectory replayed from a file: snapshots of
    /// `u v` edge lines separated by `--` lines (blank lines and `#`
    /// comments ignored), cycled when the run outlives the recording.
    /// Read when the simulation is assembled, like [`InitSpec::File`].
    Replay {
        /// Path to the snapshot file. Must be a single `#`-free token
        /// (no whitespace) so the text format round-trips.
        path: String,
    },
}

impl ChurnModelSpec {
    /// The `od-graph` churn model. [`ChurnModelSpec::Replay`] reads its
    /// snapshot file here.
    ///
    /// # Errors
    ///
    /// Parameter validation errors from `od-graph`, or
    /// [`SimError::Invalid`] for an unreadable or malformed snapshot
    /// file.
    pub fn build(&self) -> Result<ChurnModel, SimError> {
        match self {
            &ChurnModelSpec::EdgeSwap { swaps } => Ok(ChurnModel::edge_swap(swaps)),
            &ChurnModelSpec::Rewire {
                rewires,
                min_degree,
            } => Ok(ChurnModel::rewire(rewires, min_degree)),
            &ChurnModelSpec::GnpResample { p, min_degree } => {
                Ok(ChurnModel::gnp_resample(p, min_degree)?)
            }
            ChurnModelSpec::Replay { path } => {
                Ok(ChurnModel::temporal_replay(load_replay_file(path)?)?)
            }
        }
    }
}

/// Whether `path` survives the line-based text format as a single
/// `sub=val` token: non-empty, no whitespace, no `#`.
fn path_token(path: &str) -> bool {
    !path.is_empty() && !path.contains('#') && !path.chars().any(char::is_whitespace)
}

/// Reads an [`InitSpec::File`] values file: one finite float per line,
/// blank lines and `#` comments ignored.
///
/// # Errors
///
/// [`SimError::Invalid`] naming the file (and line) for IO failures,
/// malformed or non-finite values, or an empty file.
pub fn load_init_file(path: &str) -> Result<Vec<f64>, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Invalid(format!("init file '{path}': {e}")))?;
    let mut values = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let value: f64 = content.parse().map_err(|_| {
            SimError::Invalid(format!(
                "init file '{path}' line {}: malformed value '{content}'",
                idx + 1
            ))
        })?;
        if !value.is_finite() {
            return Err(SimError::Invalid(format!(
                "init file '{path}' line {}: non-finite value",
                idx + 1
            )));
        }
        values.push(value);
    }
    if values.is_empty() {
        return Err(SimError::Invalid(format!(
            "init file '{path}' contains no values"
        )));
    }
    Ok(values)
}

/// Reads a [`ChurnModelSpec::Replay`] snapshot file: `u v` edge lines,
/// snapshots separated by `--` lines (the trailing separator is
/// optional), blank lines and `#` comments ignored.
///
/// # Errors
///
/// [`SimError::Invalid`] naming the file (and line) for IO failures,
/// malformed edge lines, an empty snapshot, or a file with no
/// snapshots at all.
pub fn load_replay_file(path: &str) -> Result<Vec<Vec<(u32, u32)>>, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Invalid(format!("replay file '{path}': {e}")))?;
    let mut snapshots: Vec<Vec<(u32, u32)>> = Vec::new();
    let mut current: Vec<(u32, u32)> = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        if content == "--" {
            if current.is_empty() {
                return Err(SimError::Invalid(format!(
                    "replay file '{path}' line {line}: empty snapshot before '--'"
                )));
            }
            snapshots.push(std::mem::take(&mut current));
            continue;
        }
        let bad = || {
            SimError::Invalid(format!(
                "replay file '{path}' line {line}: expected 'u v', got '{content}'"
            ))
        };
        let mut it = content.split_whitespace();
        let (Some(u), Some(v), None) = (it.next(), it.next(), it.next()) else {
            return Err(bad());
        };
        let u: u32 = u.parse().map_err(|_| bad())?;
        let v: u32 = v.parse().map_err(|_| bad())?;
        current.push((u, v));
    }
    if !current.is_empty() {
        snapshots.push(current);
    }
    if snapshots.is_empty() {
        return Err(SimError::Invalid(format!(
            "replay file '{path}' contains no snapshots"
        )));
    }
    Ok(snapshots)
}

/// Reads a [`GraphSpec::File`] edge list: one edge per line, `u v` or
/// `u v w` (comma- or whitespace-separated — `0,1,2.5` and `0 1 2.5`
/// both work), blank lines and `#` comments ignored. The column count
/// must be consistent across the file; a third column attaches per-edge
/// weights. Node count is `max id + 1`.
///
/// # Errors
///
/// [`SimError::Invalid`] naming the file (and line) for IO failures,
/// malformed or inconsistent lines, or an empty file;
/// [`SimError::Graph`] if the edge list itself is rejected (self-loops,
/// duplicates, non-finite or negative weights, zero-weight rows).
pub fn load_edge_list_file(path: &str, directed: bool) -> Result<Graph, SimError> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| SimError::Invalid(format!("graph file '{path}': {e}")))?;
    let mut edges: Vec<(u32, u32, f64)> = Vec::new();
    let mut weighted: Option<bool> = None;
    let mut max_id = 0u32;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        let content = raw.split('#').next().unwrap_or("").trim();
        if content.is_empty() {
            continue;
        }
        let bad = |what: &str| {
            SimError::Invalid(format!(
                "graph file '{path}' line {line}: {what}: '{content}'"
            ))
        };
        let tokens: Vec<&str> = content
            .split(|c: char| c == ',' || c.is_whitespace())
            .filter(|t| !t.is_empty())
            .collect();
        let has_weight = match tokens.len() {
            2 => false,
            3 => true,
            _ => return Err(bad("expected 'u v' or 'u v w'")),
        };
        if *weighted.get_or_insert(has_weight) != has_weight {
            return Err(bad("mixed 2- and 3-column lines"));
        }
        let u: u32 = tokens[0].parse().map_err(|_| bad("malformed node id"))?;
        let v: u32 = tokens[1].parse().map_err(|_| bad("malformed node id"))?;
        let w: f64 = if has_weight {
            tokens[2].parse().map_err(|_| bad("malformed weight"))?
        } else {
            1.0
        };
        max_id = max_id.max(u).max(v);
        edges.push((u, v, w));
    }
    if edges.is_empty() {
        return Err(SimError::Invalid(format!(
            "graph file '{path}' contains no edges"
        )));
    }
    let n = max_id as usize + 1;
    let graph = match (directed, weighted.unwrap_or(false)) {
        (false, false) => {
            let plain: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
            Graph::from_edges(n, &plain)?
        }
        (false, true) => Graph::from_weighted_edges(n, &edges)?,
        (true, false) => {
            let plain: Vec<(u32, u32)> = edges.iter().map(|&(u, v, _)| (u, v)).collect();
            Graph::from_directed_edges(n, &plain)?
        }
        (true, true) => Graph::from_directed_weighted_edges(n, &edges)?,
    };
    Ok(graph)
}

/// How the batched convergence engine detects the threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StopRuleSpec {
    /// Scalar-identical per-step stopping (`od_core::StopRule::Exact`).
    Exact,
    /// Block-boundary stopping (`od_core::StopRule::Block`). Under churn
    /// this is the epoch-boundary rule of the dynamic engine.
    Block,
}

/// Which potential the ε-threshold applies to.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PotentialSpec {
    /// `φ` of Eq. 3 (π-weighted).
    Pi,
    /// `φ̄_V` of Prop. D.1 (uniform weights).
    Uniform,
}

impl PotentialSpec {
    /// The `od-core` potential kind.
    pub fn kind(&self) -> od_core::PotentialKind {
        match self {
            PotentialSpec::Pi => od_core::PotentialKind::Pi,
            PotentialSpec::Uniform => od_core::PotentialKind::Uniform,
        }
    }
}

/// When a trial stops.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum StopSpec {
    /// A fixed step horizon.
    Steps {
        /// Steps per trial.
        steps: u64,
    },
    /// ε-convergence of the chosen potential, within a step budget.
    Converge {
        /// The threshold ε.
        epsilon: f64,
        /// Detection rule.
        rule: StopRuleSpec,
        /// Which potential is thresholded.
        potential: PotentialSpec,
        /// Per-trial step budget.
        budget: u64,
    },
    /// Voter consensus, within a step budget.
    Consensus {
        /// Per-trial step budget.
        budget: u64,
    },
    /// Synchronous fixed point: stop when a full round moves no node by
    /// more than ε, within a round budget (`stop fixed_point eps=..
    /// budget=..`; the synchronous models only).
    FixedPoint {
        /// The per-round max-movement threshold ε.
        epsilon: f64,
        /// Per-trial round budget.
        budget: u64,
    },
}

/// Which kernel tier runs the scenario's hot loops.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum TierSpec {
    /// The bit-exact reference kernels (the default): per-trial results
    /// are bit-identical to the direct engine calls they replace,
    /// independent of batch size and thread count.
    #[default]
    Exact,
    /// The lane-major SIMD tier (`lane` cargo feature): all replicas of
    /// one node sit adjacent in memory so a single CSR gather feeds the
    /// whole vector register. Every replica's marginal law is exactly
    /// the process law, but the step schedule is shared across lanes, so
    /// results are **statistically equivalent** to — not bit-identical
    /// with — the exact tier. When the `lane` feature is compiled out,
    /// dispatch falls back to the exact tier.
    Lane,
}

/// What a run returns beyond the per-trial reports.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OutputSpec {
    /// Per-trial reports plus summary statistics (the default).
    Reports,
    /// Additionally record a `(t, φ(ξ(t)))` potential trace — single
    /// replica, static graph, fixed step horizon (the scalar recorded
    /// path).
    Trace {
        /// Sampling interval in steps.
        every: u64,
    },
}

/// One declarative point in the paper's experiment space. See the module
/// docs for the text format and [`crate::Simulation`] for the engine
/// dispatch.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioSpec {
    /// Optional human-readable name (`scenario <name>`).
    pub name: Option<String>,
    /// The process.
    pub model: ModelSpec,
    /// The topology.
    pub graph: GraphSpec,
    /// Per-edge weights attached to a generated topology
    /// ([`WeightSpec::Unit`] — no weights — by default).
    pub weights: WeightSpec,
    /// Topology evolution; `None` = static graph.
    pub churn: Option<ChurnSpec>,
    /// The initial state distribution.
    pub init: InitSpec,
    /// Number of independent trials (replicas).
    pub replicas: usize,
    /// Master seed; trial `i` runs from
    /// `SeedSequence::new(seed).seed(i)`, matching the Monte-Carlo
    /// runner's derivation exactly.
    pub seed: u64,
    /// The stopping rule.
    pub stop: StopSpec,
    /// Block length between convergence checks (0 = auto, one block per
    /// `n` steps). Ignored under churn (the epoch is the block).
    pub check_every: u64,
    /// Worker threads (0 = available parallelism). Results never depend
    /// on this.
    pub threads: usize,
    /// Replicas per structure-of-arrays batch / streaming-window
    /// capacity (0 = auto). Results never depend on this.
    pub batch: usize,
    /// Which kernel tier runs the hot loops ([`TierSpec::Exact`] by
    /// default). Only the exact tier is bit-reproducible.
    pub tier: TierSpec,
    /// Output selection.
    pub output: OutputSpec,
}

/// Default streaming-window / batch capacity when `batch = 0`.
pub const DEFAULT_BATCH: usize = 16;

impl ScenarioSpec {
    /// A minimal valid spec: one replica of `model` on `graph`, default
    /// init for the model family, stopping after `steps` steps.
    pub fn new(model: ModelSpec, graph: GraphSpec, steps: u64) -> ScenarioSpec {
        ScenarioSpec {
            name: None,
            model,
            graph,
            weights: WeightSpec::Unit,
            churn: None,
            init: if model.is_averaging() {
                InitSpec::PmOne
            } else {
                InitSpec::Distinct
            },
            replicas: 1,
            seed: 0,
            stop: StopSpec::Steps { steps },
            check_every: 0,
            threads: 0,
            batch: 0,
            tier: TierSpec::Exact,
            output: OutputSpec::Reports,
        }
    }

    /// The spec's canonical text form — the result-cache key.
    ///
    /// This is exactly [`fmt::Display`], named to document the contract
    /// the `od-serve` memo cache relies on: `parse` / `Display` round-
    /// trip exactly, so two specs render the same key **iff** they are
    /// equal — and because every exact-tier engine makes trial `i` a
    /// pure function of `SeedSequence::new(seed).seed(i)`, equal keys
    /// imply bit-identical results. The `seed` line is part of the
    /// rendered text, so the key already covers the seed.
    pub fn canonical_key(&self) -> String {
        self.to_string()
    }

    /// The effective batch / streaming-window capacity.
    pub fn resolved_batch(&self) -> usize {
        if self.batch == 0 {
            DEFAULT_BATCH
        } else {
            self.batch
        }
    }

    /// Validates the spec's internal consistency (graph-independent
    /// checks; graph-dependent ones — `k ≤ d_min`, connectivity — happen
    /// at [`crate::Simulation::from_spec`]).
    ///
    /// # Errors
    ///
    /// [`SimError::Invalid`] naming the first violated rule.
    pub fn validate(&self) -> Result<(), SimError> {
        let invalid = |message: &str| Err(SimError::Invalid(message.into()));
        if let Some(name) = &self.name {
            // The text format is line-based with `#` comments and the
            // parser joins a name's whitespace-separated tokens with
            // single spaces, so a name must be non-empty, `#`-free and
            // already in that normalized form or the exact parse/Display
            // round trip breaks.
            let normalized = name.split_whitespace().collect::<Vec<_>>().join(" ");
            if name.is_empty() || name.contains('#') || normalized != *name {
                return invalid(
                    "scenario name must be non-empty, single-line, '#'-free and \
                     single-space separated",
                );
            }
        }
        if self.replicas == 0 {
            return invalid("replicas must be at least 1");
        }
        match self.model {
            ModelSpec::Node { alpha, k, .. } => {
                if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
                    return invalid("node model alpha must lie in [0, 1)");
                }
                if k == 0 {
                    return invalid("node model k must be at least 1");
                }
            }
            ModelSpec::Edge { alpha, .. } => {
                if !alpha.is_finite() || !(0.0..1.0).contains(&alpha) {
                    return invalid("edge model alpha must lie in [0, 1)");
                }
            }
            ModelSpec::Voter | ModelSpec::WeightedMedian => {}
            ModelSpec::DeGroot { lazy } => {
                if !lazy.is_finite() || !(0.0..1.0).contains(&lazy) {
                    return invalid("degroot laziness must lie in [0, 1)");
                }
            }
            ModelSpec::Fj { alpha } => {
                if !alpha.is_finite() || alpha <= 0.0 || alpha > 1.0 {
                    return invalid("fj stubbornness alpha must lie in (0, 1]");
                }
            }
        }
        if self.model.is_averaging() != self.init.is_averaging() {
            return invalid("init distribution does not match the model family (voter opinions vs averaging values)");
        }
        match self.init {
            InitSpec::Opinions { levels: 0 } => {
                return invalid("opinions init needs at least 1 level");
            }
            InitSpec::Linear { lo, hi } if !lo.is_finite() || !hi.is_finite() => {
                return invalid("linear init endpoints must be finite");
            }
            InitSpec::Constant { value } if !value.is_finite() => {
                return invalid("constant init value must be finite");
            }
            InitSpec::File { ref path } if !path_token(path) => {
                return invalid("init file path must be a non-empty single token without '#'");
            }
            _ => {}
        }
        match self.graph {
            GraphSpec::Gnp { p, .. } | GraphSpec::WattsStrogatz { p, .. } if !p.is_finite() => {
                return invalid("graph edge probability must be finite");
            }
            GraphSpec::File { ref path, .. } if !path_token(path) => {
                return invalid("graph file path must be a non-empty single token without '#'");
            }
            _ => {}
        }
        if matches!(self.graph, GraphSpec::File { directed: true, .. }) && !self.model.is_sync() {
            return invalid(
                "directed graphs run the synchronous models only (degroot, fj, weighted_median)",
            );
        }
        if let WeightSpec::Uniform { lo, hi, .. } = self.weights {
            if !lo.is_finite() || !hi.is_finite() || lo <= 0.0 || lo > hi {
                return invalid("uniform weights need finite endpoints with 0 < lo <= hi");
            }
            if !self.model.is_averaging() {
                return invalid("the voter model samples uniform edges; drop the weights line");
            }
            if self.churn.is_some() {
                return invalid(
                    "churned graphs are unweighted (the dynamic engines reject weights)",
                );
            }
            if matches!(self.graph, GraphSpec::File { .. }) {
                return invalid(
                    "file graphs carry their weights in the file; drop the weights line",
                );
            }
            if matches!(self.output, OutputSpec::Trace { .. }) {
                return invalid("trace output records the scalar path, which is unweighted");
            }
        }
        if self.model.is_sync() {
            // The synchronous-rounds kernels are deterministic: one
            // round sweep, no per-trial randomness, no churn interplay.
            if self.churn.is_some() {
                return invalid("synchronous models run on a static graph");
            }
            if self.replicas != 1 {
                return invalid("synchronous rounds are deterministic; use replicas 1");
            }
            if self.tier == TierSpec::Lane {
                return invalid(
                    "the lane tier accelerates the asynchronous kernels; use tier exact",
                );
            }
            if matches!(self.output, OutputSpec::Trace { .. }) {
                return invalid("trace output records the asynchronous scalar path");
            }
            if !matches!(
                self.stop,
                StopSpec::Steps { .. } | StopSpec::FixedPoint { .. }
            ) {
                return invalid(
                    "synchronous models stop on fixed_point or a fixed round count (stop steps)",
                );
            }
        }
        match self.stop {
            StopSpec::Steps { .. } => {}
            StopSpec::Converge {
                epsilon,
                rule,
                potential,
                ..
            } => {
                if !self.model.is_averaging() {
                    return invalid("the voter model stops on consensus, not epsilon-convergence");
                }
                if !epsilon.is_finite() || epsilon < 0.0 {
                    return invalid("epsilon must be finite and non-negative");
                }
                if self.churn.is_some() {
                    if rule != StopRuleSpec::Block {
                        return invalid(
                            "under churn, convergence is checked at epoch boundaries (rule=block)",
                        );
                    }
                    if potential != PotentialSpec::Pi {
                        return invalid("under churn, only the pi potential is supported");
                    }
                }
            }
            StopSpec::Consensus { .. } => {
                if self.model.is_averaging() {
                    return invalid("consensus stopping applies to the voter model only");
                }
            }
            StopSpec::FixedPoint { epsilon, .. } => {
                if !self.model.is_sync() {
                    return invalid(
                        "fixed_point stopping applies to the synchronous models \
                         (degroot, fj, weighted_median)",
                    );
                }
                if !epsilon.is_finite() || epsilon < 0.0 {
                    return invalid("epsilon must be finite and non-negative");
                }
            }
        }
        if let Some(churn) = &self.churn {
            if churn.steps_per_epoch == 0 {
                return invalid("churn epoch must be at least 1 step");
            }
            if let ChurnModelSpec::GnpResample { p, .. } = churn.model {
                if !(0.0..=1.0).contains(&p) {
                    return invalid("gnp_resample probability must lie in [0, 1]");
                }
            }
            if let ChurnModelSpec::Replay { ref path } = churn.model {
                if !path_token(path) {
                    return invalid(
                        "churn replay file path must be a non-empty single token without '#'",
                    );
                }
            }
            let horizon = match self.stop {
                StopSpec::Steps { steps } => steps,
                StopSpec::Converge { budget, .. }
                | StopSpec::Consensus { budget }
                | StopSpec::FixedPoint { budget, .. } => budget,
            };
            if !horizon.is_multiple_of(churn.steps_per_epoch) {
                return invalid("the step horizon/budget must be a whole number of churn epochs");
            }
        }
        if self.tier == TierSpec::Lane {
            if !self.model.is_averaging() {
                return invalid(
                    "the lane tier accelerates the averaging kernels only (not the voter)",
                );
            }
            if matches!(self.output, OutputSpec::Trace { .. }) {
                return invalid("trace output records the exact scalar path; use tier exact");
            }
            if let StopSpec::Converge {
                rule, potential, ..
            } = self.stop
            {
                if rule != StopRuleSpec::Block {
                    return invalid(
                        "the lane tier checks convergence at block boundaries (rule=block)",
                    );
                }
                if potential != PotentialSpec::Pi {
                    return invalid("the lane tier supports the pi potential only");
                }
            }
        }
        if let OutputSpec::Trace { every } = self.output {
            if every == 0 {
                return invalid("trace sampling interval must be at least 1");
            }
            if self.replicas != 1 {
                return invalid("trace output needs exactly 1 replica (the scalar recorded path)");
            }
            if self.churn.is_some() {
                return invalid("trace output needs a static graph");
            }
            if !self.model.is_averaging() {
                return invalid("trace output records the averaging potential, not voter opinions");
            }
            if !matches!(self.stop, StopSpec::Steps { .. }) {
                return invalid("trace output needs a fixed step horizon (stop steps)");
            }
        }
        Ok(())
    }

    /// Parses the text format (see the module docs). Unknown keys,
    /// malformed numbers, duplicate keys and missing required keys
    /// (`model`, `graph`, `stop`) are errors; everything else defaults.
    ///
    /// # Errors
    ///
    /// [`SimError::Parse`] with the offending line, or
    /// [`SimError::Invalid`] if the parsed spec fails
    /// [`ScenarioSpec::validate`].
    pub fn parse(text: &str) -> Result<ScenarioSpec, SimError> {
        parse::parse(text)
    }
}

impl fmt::Display for ScenarioSpec {
    /// The canonical text form: every field explicit, fixed key order, so
    /// `parse(spec.to_string()) == spec` exactly.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if let Some(name) = &self.name {
            writeln!(f, "scenario {name}")?;
        }
        match self.model {
            ModelSpec::Node { alpha, k, lazy } => {
                writeln!(f, "model node alpha={alpha} k={k} lazy={lazy}")?;
            }
            ModelSpec::Edge { alpha, lazy } => {
                writeln!(f, "model edge alpha={alpha} lazy={lazy}")?;
            }
            ModelSpec::Voter => writeln!(f, "model voter")?,
            ModelSpec::DeGroot { lazy } => writeln!(f, "model degroot lazy={lazy}")?,
            ModelSpec::Fj { alpha } => writeln!(f, "model fj alpha={alpha}")?,
            ModelSpec::WeightedMedian => writeln!(f, "model weighted_median")?,
        }
        writeln!(f, "graph {}", self.graph)?;
        // Unit weights print nothing: the canonical key of every
        // pre-existing (unweighted) scenario is unchanged, so od-serve
        // memo entries stay valid.
        if let WeightSpec::Uniform { lo, hi, seed } = self.weights {
            writeln!(f, "weights uniform lo={lo} hi={hi} seed={seed}")?;
        }
        match &self.init {
            InitSpec::PmOne => writeln!(f, "init pm_one")?,
            InitSpec::Linear { lo, hi } => writeln!(f, "init linear lo={lo} hi={hi}")?,
            InitSpec::Constant { value } => writeln!(f, "init constant value={value}")?,
            InitSpec::Indicator { node } => writeln!(f, "init indicator node={node}")?,
            InitSpec::Opinions { levels } => writeln!(f, "init opinions levels={levels}")?,
            InitSpec::Distinct => writeln!(f, "init distinct")?,
            InitSpec::File { path } => writeln!(f, "init file path={path}")?,
        }
        if let Some(churn) = &self.churn {
            let (epoch, seed) = (churn.steps_per_epoch, churn.seed);
            match &churn.model {
                ChurnModelSpec::EdgeSwap { swaps } => {
                    writeln!(f, "churn edge_swap swaps={swaps} epoch={epoch} seed={seed}")?;
                }
                ChurnModelSpec::Rewire {
                    rewires,
                    min_degree,
                } => writeln!(
                    f,
                    "churn rewire rewires={rewires} floor={min_degree} epoch={epoch} seed={seed}"
                )?,
                ChurnModelSpec::GnpResample { p, min_degree } => writeln!(
                    f,
                    "churn gnp_resample p={p} floor={min_degree} epoch={epoch} seed={seed}"
                )?,
                ChurnModelSpec::Replay { path } => {
                    writeln!(f, "churn replay file={path} epoch={epoch} seed={seed}")?;
                }
            }
        }
        writeln!(f, "replicas {}", self.replicas)?;
        writeln!(f, "seed {}", self.seed)?;
        match self.stop {
            StopSpec::Steps { steps } => writeln!(f, "stop steps count={steps}")?,
            StopSpec::Converge {
                epsilon,
                rule,
                potential,
                budget,
            } => {
                let rule = match rule {
                    StopRuleSpec::Exact => "exact",
                    StopRuleSpec::Block => "block",
                };
                let potential = match potential {
                    PotentialSpec::Pi => "pi",
                    PotentialSpec::Uniform => "uniform",
                };
                writeln!(
                    f,
                    "stop converge eps={epsilon} rule={rule} potential={potential} budget={budget}"
                )?;
            }
            StopSpec::Consensus { budget } => writeln!(f, "stop consensus budget={budget}")?,
            StopSpec::FixedPoint { epsilon, budget } => {
                writeln!(f, "stop fixed_point eps={epsilon} budget={budget}")?;
            }
        }
        writeln!(f, "check_every {}", self.check_every)?;
        writeln!(f, "threads {}", self.threads)?;
        writeln!(f, "batch {}", self.batch)?;
        match self.tier {
            TierSpec::Exact => writeln!(f, "tier exact")?,
            TierSpec::Lane => writeln!(f, "tier lane")?,
        }
        match self.output {
            OutputSpec::Reports => writeln!(f, "output reports"),
            OutputSpec::Trace { every } => writeln!(f, "output trace every={every}"),
        }
    }
}

mod parse {
    use super::*;

    /// `k=v` token map with duplicate and completeness checking.
    struct Fields<'a> {
        line: usize,
        map: HashMap<&'a str, &'a str>,
    }

    impl<'a> Fields<'a> {
        fn new(line: usize, tokens: &[&'a str]) -> Result<Self, SimError> {
            let mut map = HashMap::new();
            for token in tokens {
                let Some((key, value)) = token.split_once('=') else {
                    return Err(err(line, format!("expected key=value, got '{token}'")));
                };
                if map.insert(key, value).is_some() {
                    return Err(err(line, format!("duplicate field '{key}'")));
                }
            }
            Ok(Fields { line, map })
        }

        fn take<T: std::str::FromStr>(&mut self, key: &str) -> Result<T, SimError> {
            let Some(raw) = self.map.remove(key) else {
                return Err(err(self.line, format!("missing field '{key}'")));
            };
            raw.parse()
                .map_err(|_| err(self.line, format!("malformed value for '{key}': '{raw}'")))
        }

        /// Like [`Fields::take`], but defaults instead of erroring when
        /// the field is absent — for optional fields like the file
        /// graph's `directed` flag.
        fn take_or<T: std::str::FromStr>(&mut self, key: &str, default: T) -> Result<T, SimError> {
            if self.map.contains_key(key) {
                self.take(key)
            } else {
                Ok(default)
            }
        }

        /// Like [`Fields::take`] for `f64`, but rejects the non-finite
        /// tokens `f64::from_str` would happily accept (`NaN`, `inf`,
        /// …) — a spec file can never name a non-finite parameter.
        fn take_finite(&mut self, key: &str) -> Result<f64, SimError> {
            let line = self.line;
            let value: f64 = self.take(key)?;
            if !value.is_finite() {
                return Err(err(line, format!("non-finite value for '{key}'")));
            }
            Ok(value)
        }

        fn finish(self) -> Result<(), SimError> {
            if let Some(key) = self.map.keys().next() {
                return Err(err(self.line, format!("unknown field '{key}'")));
            }
            Ok(())
        }
    }

    fn err(line: usize, message: String) -> SimError {
        SimError::Parse { line, message }
    }

    pub(super) fn parse(text: &str) -> Result<ScenarioSpec, SimError> {
        let mut name: Option<String> = None;
        let mut model: Option<ModelSpec> = None;
        let mut graph: Option<GraphSpec> = None;
        let mut weights: Option<WeightSpec> = None;
        let mut churn: Option<ChurnSpec> = None;
        let mut init: Option<InitSpec> = None;
        let mut replicas: Option<usize> = None;
        let mut seed: Option<u64> = None;
        let mut stop: Option<StopSpec> = None;
        let mut check_every: Option<u64> = None;
        let mut threads: Option<usize> = None;
        let mut batch: Option<usize> = None;
        let mut tier: Option<TierSpec> = None;
        let mut output: Option<OutputSpec> = None;

        for (idx, raw_line) in text.lines().enumerate() {
            let line = idx + 1;
            let content = raw_line.split('#').next().unwrap_or("").trim();
            if content.is_empty() {
                continue;
            }
            let mut tokens = content.split_whitespace();
            let key = tokens.next().expect("non-empty line has a first token");
            let rest: Vec<&str> = tokens.collect();
            let dup = |slot_taken: bool| {
                if slot_taken {
                    Err(err(line, format!("duplicate key '{key}'")))
                } else {
                    Ok(())
                }
            };
            match key {
                "scenario" => {
                    dup(name.is_some())?;
                    if rest.is_empty() {
                        return Err(err(line, "scenario needs a name".into()));
                    }
                    name = Some(rest.join(" "));
                }
                "model" => {
                    dup(model.is_some())?;
                    model = Some(parse_model(line, &rest)?);
                }
                "graph" => {
                    dup(graph.is_some())?;
                    graph = Some(parse_graph(line, &rest)?);
                }
                "weights" => {
                    dup(weights.is_some())?;
                    weights = Some(parse_weights(line, &rest)?);
                }
                "churn" => {
                    dup(churn.is_some())?;
                    churn = Some(parse_churn(line, &rest)?);
                }
                "init" => {
                    dup(init.is_some())?;
                    init = Some(parse_init(line, &rest)?);
                }
                "replicas" => {
                    dup(replicas.is_some())?;
                    replicas = Some(parse_scalar(line, key, &rest)?);
                }
                "seed" => {
                    dup(seed.is_some())?;
                    seed = Some(parse_scalar(line, key, &rest)?);
                }
                "stop" => {
                    dup(stop.is_some())?;
                    stop = Some(parse_stop(line, &rest)?);
                }
                "check_every" => {
                    dup(check_every.is_some())?;
                    check_every = Some(parse_scalar(line, key, &rest)?);
                }
                "threads" => {
                    dup(threads.is_some())?;
                    threads = Some(parse_scalar(line, key, &rest)?);
                }
                "batch" => {
                    dup(batch.is_some())?;
                    batch = Some(parse_scalar(line, key, &rest)?);
                }
                "tier" => {
                    dup(tier.is_some())?;
                    tier = Some(parse_tier(line, &rest)?);
                }
                "output" => {
                    dup(output.is_some())?;
                    output = Some(parse_output(line, &rest)?);
                }
                other => return Err(err(line, format!("unknown key '{other}'"))),
            }
        }

        let Some(model) = model else {
            return Err(SimError::Invalid("missing 'model' line".into()));
        };
        let Some(graph) = graph else {
            return Err(SimError::Invalid("missing 'graph' line".into()));
        };
        let Some(stop) = stop else {
            return Err(SimError::Invalid("missing 'stop' line".into()));
        };
        let spec = ScenarioSpec {
            name,
            model,
            graph,
            weights: weights.unwrap_or_default(),
            churn,
            init: init.unwrap_or(if model.is_averaging() {
                InitSpec::PmOne
            } else {
                InitSpec::Distinct
            }),
            replicas: replicas.unwrap_or(1),
            seed: seed.unwrap_or(0),
            stop,
            check_every: check_every.unwrap_or(0),
            threads: threads.unwrap_or(0),
            batch: batch.unwrap_or(0),
            tier: tier.unwrap_or_default(),
            output: output.unwrap_or(OutputSpec::Reports),
        };
        spec.validate()?;
        Ok(spec)
    }

    fn parse_scalar<T: std::str::FromStr>(
        line: usize,
        key: &str,
        rest: &[&str],
    ) -> Result<T, SimError> {
        if rest.len() != 1 {
            return Err(err(line, format!("'{key}' takes exactly one value")));
        }
        rest[0]
            .parse()
            .map_err(|_| err(line, format!("malformed value for '{key}': '{}'", rest[0])))
    }

    fn variant_fields<'a>(
        line: usize,
        what: &str,
        rest: &'a [&'a str],
    ) -> Result<(&'a str, Fields<'a>), SimError> {
        let Some((&variant, fields)) = rest.split_first() else {
            return Err(err(line, format!("'{what}' needs a variant")));
        };
        Ok((variant, Fields::new(line, fields)?))
    }

    fn parse_model(line: usize, rest: &[&str]) -> Result<ModelSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "model", rest)?;
        let model = match variant {
            "node" => ModelSpec::Node {
                alpha: f.take_finite("alpha")?,
                k: f.take("k")?,
                lazy: f.take("lazy")?,
            },
            "edge" => ModelSpec::Edge {
                alpha: f.take_finite("alpha")?,
                lazy: f.take("lazy")?,
            },
            "voter" => ModelSpec::Voter,
            "degroot" => ModelSpec::DeGroot {
                lazy: f.take_finite("lazy")?,
            },
            "fj" => ModelSpec::Fj {
                alpha: f.take_finite("alpha")?,
            },
            "weighted_median" => ModelSpec::WeightedMedian,
            other => return Err(err(line, format!("unknown model '{other}'"))),
        };
        f.finish()?;
        Ok(model)
    }

    fn parse_weights(line: usize, rest: &[&str]) -> Result<WeightSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "weights", rest)?;
        let weights = match variant {
            "uniform" => WeightSpec::Uniform {
                lo: f.take_finite("lo")?,
                hi: f.take_finite("hi")?,
                seed: f.take("seed")?,
            },
            other => return Err(err(line, format!("unknown weights distribution '{other}'"))),
        };
        f.finish()?;
        Ok(weights)
    }

    pub(super) fn parse_graph(line: usize, rest: &[&str]) -> Result<GraphSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "graph", rest)?;
        // `graph file=<path> [directed=true]` names an edge-list file,
        // not a generator family — the variant token carries the path.
        if let Some(path) = variant.strip_prefix("file=") {
            if path.is_empty() {
                return Err(err(line, "file graph needs a non-empty path".into()));
            }
            let directed = f.take_or("directed", false)?;
            f.finish()?;
            return Ok(GraphSpec::File {
                path: path.to_string(),
                directed,
            });
        }
        let graph = match variant {
            "cycle" => GraphSpec::Cycle { n: f.take("n")? },
            "path" => GraphSpec::Path { n: f.take("n")? },
            "complete" => GraphSpec::Complete { n: f.take("n")? },
            "star" => GraphSpec::Star { n: f.take("n")? },
            "complete_bipartite" => GraphSpec::CompleteBipartite {
                a: f.take("a")?,
                b: f.take("b")?,
            },
            "grid" => GraphSpec::Grid {
                rows: f.take("rows")?,
                cols: f.take("cols")?,
            },
            "torus" => GraphSpec::Torus {
                rows: f.take("rows")?,
                cols: f.take("cols")?,
            },
            "hypercube" => GraphSpec::Hypercube {
                dim: f.take("dim")?,
            },
            "binary_tree" => GraphSpec::BinaryTree {
                levels: f.take("levels")?,
            },
            "petersen" => GraphSpec::Petersen,
            "barbell" => GraphSpec::Barbell { k: f.take("k")? },
            "lollipop" => GraphSpec::Lollipop {
                k: f.take("k")?,
                tail: f.take("tail")?,
            },
            "gnp" => GraphSpec::Gnp {
                n: f.take("n")?,
                p: f.take_finite("p")?,
                seed: f.take("seed")?,
            },
            "gnm" => GraphSpec::Gnm {
                n: f.take("n")?,
                m: f.take("m")?,
                seed: f.take("seed")?,
            },
            "random_regular" => GraphSpec::RandomRegular {
                n: f.take("n")?,
                d: f.take("d")?,
                seed: f.take("seed")?,
            },
            "watts_strogatz" => GraphSpec::WattsStrogatz {
                n: f.take("n")?,
                k: f.take("k")?,
                p: f.take_finite("p")?,
                seed: f.take("seed")?,
            },
            "barabasi_albert" => GraphSpec::BarabasiAlbert {
                n: f.take("n")?,
                m: f.take("m")?,
                seed: f.take("seed")?,
            },
            other => return Err(err(line, format!("unknown graph generator '{other}'"))),
        };
        f.finish()?;
        Ok(graph)
    }

    fn parse_init(line: usize, rest: &[&str]) -> Result<InitSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "init", rest)?;
        let init = match variant {
            "pm_one" => InitSpec::PmOne,
            "linear" => InitSpec::Linear {
                lo: f.take_finite("lo")?,
                hi: f.take_finite("hi")?,
            },
            "constant" => InitSpec::Constant {
                value: f.take_finite("value")?,
            },
            "indicator" => InitSpec::Indicator {
                node: f.take("node")?,
            },
            "opinions" => InitSpec::Opinions {
                levels: f.take("levels")?,
            },
            "distinct" => InitSpec::Distinct,
            "file" => InitSpec::File {
                path: f.take("path")?,
            },
            other => return Err(err(line, format!("unknown init distribution '{other}'"))),
        };
        f.finish()?;
        Ok(init)
    }

    fn parse_churn(line: usize, rest: &[&str]) -> Result<ChurnSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "churn", rest)?;
        let model = match variant {
            "edge_swap" => ChurnModelSpec::EdgeSwap {
                swaps: f.take("swaps")?,
            },
            "rewire" => ChurnModelSpec::Rewire {
                rewires: f.take("rewires")?,
                min_degree: f.take("floor")?,
            },
            "gnp_resample" => ChurnModelSpec::GnpResample {
                p: f.take_finite("p")?,
                min_degree: f.take("floor")?,
            },
            "replay" => ChurnModelSpec::Replay {
                path: f.take("file")?,
            },
            other => return Err(err(line, format!("unknown churn model '{other}'"))),
        };
        let spec = ChurnSpec {
            model,
            steps_per_epoch: f.take("epoch")?,
            seed: f.take("seed")?,
        };
        f.finish()?;
        Ok(spec)
    }

    fn parse_stop(line: usize, rest: &[&str]) -> Result<StopSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "stop", rest)?;
        let stop = match variant {
            "steps" => StopSpec::Steps {
                steps: f.take("count")?,
            },
            "converge" => {
                let epsilon = f.take_finite("eps")?;
                let rule = match f.take::<String>("rule")?.as_str() {
                    "exact" => StopRuleSpec::Exact,
                    "block" => StopRuleSpec::Block,
                    other => return Err(err(line, format!("unknown stop rule '{other}'"))),
                };
                let potential = match f.take::<String>("potential")?.as_str() {
                    "pi" => PotentialSpec::Pi,
                    "uniform" => PotentialSpec::Uniform,
                    other => return Err(err(line, format!("unknown potential '{other}'"))),
                };
                StopSpec::Converge {
                    epsilon,
                    rule,
                    potential,
                    budget: f.take("budget")?,
                }
            }
            "consensus" => StopSpec::Consensus {
                budget: f.take("budget")?,
            },
            "fixed_point" => StopSpec::FixedPoint {
                epsilon: f.take_finite("eps")?,
                budget: f.take("budget")?,
            },
            other => return Err(err(line, format!("unknown stop rule '{other}'"))),
        };
        f.finish()?;
        Ok(stop)
    }

    fn parse_tier(line: usize, rest: &[&str]) -> Result<TierSpec, SimError> {
        match rest {
            ["exact"] => Ok(TierSpec::Exact),
            ["lane"] => Ok(TierSpec::Lane),
            _ => Err(err(line, "'tier' takes exactly 'exact' or 'lane'".into())),
        }
    }

    fn parse_output(line: usize, rest: &[&str]) -> Result<OutputSpec, SimError> {
        let (variant, mut f) = variant_fields(line, "output", rest)?;
        let output = match variant {
            "reports" => OutputSpec::Reports,
            "trace" => OutputSpec::Trace {
                every: f.take("every")?,
            },
            other => return Err(err(line, format!("unknown output '{other}'"))),
        };
        f.finish()?;
        Ok(output)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_spec() -> ScenarioSpec {
        ScenarioSpec {
            name: Some("demo".into()),
            model: ModelSpec::Node {
                alpha: 0.5,
                k: 2,
                lazy: false,
            },
            graph: GraphSpec::Torus { rows: 8, cols: 8 },
            weights: WeightSpec::Unit,
            churn: Some(ChurnSpec {
                model: ChurnModelSpec::EdgeSwap { swaps: 4 },
                steps_per_epoch: 64,
                seed: 7,
            }),
            init: InitSpec::PmOne,
            replicas: 8,
            seed: 42,
            stop: StopSpec::Converge {
                epsilon: 1e-10,
                rule: StopRuleSpec::Block,
                potential: PotentialSpec::Pi,
                budget: 64 * 1000,
            },
            check_every: 0,
            threads: 1,
            batch: 4,
            tier: TierSpec::Exact,
            output: OutputSpec::Reports,
        }
    }

    #[test]
    fn round_trips_through_text() {
        let spec = sample_spec();
        let text = spec.to_string();
        let parsed = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        // And the canonical form is a fixed point.
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn parses_comments_defaults_and_order_insensitivity() {
        let text = "\n# a comment\nstop steps count=100   # trailing comment\n\ngraph petersen\nmodel voter\n";
        let spec = ScenarioSpec::parse(text).unwrap();
        assert_eq!(spec.model, ModelSpec::Voter);
        assert_eq!(spec.graph, GraphSpec::Petersen);
        assert_eq!(spec.init, InitSpec::Distinct);
        assert_eq!(spec.replicas, 1);
        assert_eq!(spec.output, OutputSpec::Reports);
    }

    #[test]
    fn rejects_malformed_lines() {
        let bad = [
            "model node alpha=0.5 k=2 lazy=false", // no graph/stop
            "model nodule\ngraph petersen\nstop steps count=1", // unknown model
            "model voter\ngraph petersen\nstop steps count=x", // bad number
            "model voter\ngraph petersen\nstop steps count=1\nzap 3", // unknown key
            "model voter\ngraph petersen\ngraph petersen\nstop steps count=1", // duplicate
            "model node alpha=0.5 k=2 lazy=false extra=1\ngraph petersen\nstop steps count=1",
            "model node alpha=0.5\ngraph petersen\nstop steps count=1", // missing field
        ];
        for text in bad {
            assert!(ScenarioSpec::parse(text).is_err(), "accepted: {text}");
        }
    }

    #[test]
    fn rejects_non_finite_floats_at_parse_time() {
        // `f64::from_str` happily parses NaN/inf tokens; the spec format
        // must reject them before validation ever sees a value.
        let bad = [
            "model node alpha=NaN k=2 lazy=false\ngraph petersen\nstop steps count=1",
            "model edge alpha=inf lazy=false\ngraph petersen\nstop steps count=1",
            "model node alpha=0.5 k=2 lazy=false\ngraph petersen\ninit linear lo=NaN hi=1\nstop steps count=1",
            "model node alpha=0.5 k=2 lazy=false\ngraph petersen\ninit constant value=-inf\nstop steps count=1",
            "model node alpha=0.5 k=2 lazy=false\ngraph gnp n=16 p=inf seed=1\nstop steps count=1",
            "model node alpha=0.5 k=2 lazy=false\ngraph watts_strogatz n=16 k=2 p=NaN seed=1\nstop steps count=1",
            "model node alpha=0.5 k=2 lazy=false\ngraph petersen\nchurn gnp_resample p=NaN floor=1 epoch=8 seed=1\nstop steps count=8",
            "model node alpha=0.5 k=2 lazy=false\ngraph petersen\nstop converge eps=NaN rule=block potential=pi budget=100",
        ];
        for text in bad {
            assert!(
                matches!(ScenarioSpec::parse(text), Err(SimError::Parse { .. })),
                "accepted or mis-classified: {text}"
            );
        }
        // And programmatically-built specs hit the same wall in validate.
        let mut spec = sample_spec();
        spec.init = InitSpec::Linear {
            lo: f64::NAN,
            hi: 1.0,
        };
        assert!(matches!(spec.validate(), Err(SimError::Invalid(_))));
        let mut spec = sample_spec();
        spec.init = InitSpec::Constant {
            value: f64::INFINITY,
        };
        assert!(matches!(spec.validate(), Err(SimError::Invalid(_))));
        let mut spec = sample_spec();
        spec.graph = GraphSpec::Gnp {
            n: 16,
            p: f64::NAN,
            seed: 1,
        };
        assert!(matches!(spec.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn tier_round_trips_and_validates() {
        // Default is exact, printed explicitly, and round-trips.
        let spec = sample_spec();
        assert_eq!(spec.tier, TierSpec::Exact);
        assert!(spec.to_string().contains("tier exact"));
        let mut lane = sample_spec();
        lane.tier = TierSpec::Lane;
        assert!(lane.validate().is_ok(), "lane + block/pi converge is fine");
        let text = lane.to_string();
        assert!(text.contains("tier lane"));
        assert_eq!(ScenarioSpec::parse(&text).unwrap(), lane);
        // Unknown tier token is a parse error.
        assert!(
            ScenarioSpec::parse("model voter\ngraph petersen\nstop steps count=1\ntier warp")
                .is_err()
        );
        // Lane rejects the voter model…
        let mut bad = sample_spec();
        bad.tier = TierSpec::Lane;
        bad.model = ModelSpec::Voter;
        bad.init = InitSpec::Distinct;
        bad.stop = StopSpec::Steps { steps: 64 };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …the exact per-step stopping rule…
        let mut bad = sample_spec();
        bad.tier = TierSpec::Lane;
        bad.churn = None;
        bad.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Exact,
            potential: PotentialSpec::Pi,
            budget: 6400,
        };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …the uniform potential…
        let mut bad = sample_spec();
        bad.tier = TierSpec::Lane;
        bad.churn = None;
        bad.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Uniform,
            budget: 6400,
        };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …and trace output.
        let mut bad = sample_spec();
        bad.tier = TierSpec::Lane;
        bad.churn = None;
        bad.replicas = 1;
        bad.stop = StopSpec::Steps { steps: 100 };
        bad.output = OutputSpec::Trace { every: 10 };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn rejects_semantic_violations() {
        // Zero replicas.
        let mut spec = sample_spec();
        spec.replicas = 0;
        assert!(matches!(spec.validate(), Err(SimError::Invalid(_))));
        // Negative epsilon.
        let mut spec = sample_spec();
        spec.stop = StopSpec::Converge {
            epsilon: -1.0,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 64,
        };
        assert!(spec.validate().is_err());
        // Voter model with averaging init.
        let mut spec = sample_spec();
        spec.model = ModelSpec::Voter;
        assert!(spec.validate().is_err());
        // Churn with exact rule.
        let mut spec = sample_spec();
        spec.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Exact,
            potential: PotentialSpec::Pi,
            budget: 6400,
        };
        assert!(spec.validate().is_err());
        // Budget not a whole number of epochs.
        let mut spec = sample_spec();
        spec.stop = StopSpec::Converge {
            epsilon: 1e-9,
            rule: StopRuleSpec::Block,
            potential: PotentialSpec::Pi,
            budget: 65,
        };
        assert!(spec.validate().is_err());
        // Trace with many replicas.
        let mut spec = sample_spec();
        spec.churn = None;
        spec.stop = StopSpec::Steps { steps: 100 };
        spec.output = OutputSpec::Trace { every: 10 };
        assert!(spec.validate().is_err());
        spec.replicas = 1;
        assert!(spec.validate().is_ok());
        // Names that would break the line-based round trip: comments,
        // newlines, and whitespace the parser would normalize away.
        for bad in [
            "",
            "with # comment",
            "two\nlines",
            " lead",
            "trail ",
            "a  b",
            "tab\tb",
        ] {
            let mut spec = sample_spec();
            spec.name = Some(bad.into());
            assert!(spec.validate().is_err(), "accepted name {bad:?}");
        }
        let mut spec = sample_spec();
        spec.name = Some("multi word name".into());
        assert!(spec.validate().is_ok());
    }

    #[test]
    fn graph_specs_build_every_family() {
        let specs = [
            GraphSpec::Cycle { n: 8 },
            GraphSpec::Path { n: 8 },
            GraphSpec::Complete { n: 8 },
            GraphSpec::Star { n: 8 },
            GraphSpec::CompleteBipartite { a: 3, b: 4 },
            GraphSpec::Grid { rows: 3, cols: 4 },
            GraphSpec::Torus { rows: 4, cols: 4 },
            GraphSpec::Hypercube { dim: 3 },
            GraphSpec::BinaryTree { levels: 3 },
            GraphSpec::Petersen,
            GraphSpec::Barbell { k: 4 },
            GraphSpec::Lollipop { k: 4, tail: 3 },
            GraphSpec::Gnp {
                n: 16,
                p: 0.4,
                seed: 1,
            },
            GraphSpec::Gnm {
                n: 16,
                m: 24,
                seed: 1,
            },
            GraphSpec::RandomRegular {
                n: 12,
                d: 4,
                seed: 1,
            },
            GraphSpec::WattsStrogatz {
                n: 16,
                k: 2,
                p: 0.2,
                seed: 1,
            },
            GraphSpec::BarabasiAlbert {
                n: 16,
                m: 2,
                seed: 1,
            },
        ];
        assert_eq!(specs.len(), 17, "cover all 17 generator families");
        for spec in specs {
            let g = spec.build().unwrap();
            assert!(g.is_connected(), "{spec:?}");
            // Random families are reproducible from their seed.
            assert_eq!(spec.build().unwrap(), g);
        }
    }

    #[test]
    fn init_distributions() {
        assert_eq!(pm_one(4), vec![1.0, -1.0, 1.0, -1.0]);
        assert!(pm_one(5).iter().sum::<f64>().abs() < 1e-12);
        assert_eq!(
            InitSpec::Linear { lo: 0.0, hi: 3.0 }.values(4),
            vec![0.0, 1.0, 2.0, 3.0]
        );
        assert_eq!(InitSpec::Constant { value: 2.5 }.values(3), vec![2.5; 3]);
        assert_eq!(
            InitSpec::Indicator { node: 1 }.values(3),
            vec![0.0, 1.0, 0.0]
        );
        assert_eq!(
            InitSpec::Opinions { levels: 3 }.opinions(5),
            vec![0, 1, 2, 0, 1]
        );
        assert_eq!(InitSpec::Distinct.opinions(3), vec![0, 1, 2]);
    }

    /// A scratch file under the target temp dir whose path is a single
    /// `#`-free token (the text format's path constraint).
    fn scratch_file(name: &str, contents: &str) -> String {
        let path = std::env::temp_dir().join(format!("od_spec_test_{name}"));
        std::fs::write(&path, contents).unwrap();
        let path = path.to_str().unwrap().to_string();
        assert!(!path.contains(['#', ' ']), "temp path must be a token");
        path
    }

    #[test]
    fn file_spellings_round_trip_without_io() {
        // Parsing and formatting never touch the file system — the
        // paths need not exist until `Simulation::from_spec`.
        let mut spec = sample_spec();
        spec.init = InitSpec::File {
            path: "/nonexistent/values.txt".into(),
        };
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::Replay {
                path: "/nonexistent/snapshots.txt".into(),
            },
            steps_per_epoch: 64,
            seed: 7,
        });
        let text = spec.to_string();
        assert!(text.contains("init file path=/nonexistent/values.txt"));
        assert!(text.contains("churn replay file=/nonexistent/snapshots.txt"));
        let parsed = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn file_paths_must_be_tokens() {
        let mut spec = sample_spec();
        spec.init = InitSpec::File {
            path: String::new(),
        };
        assert!(spec.validate().is_err());
        spec.init = InitSpec::File {
            path: "has#hash".into(),
        };
        assert!(spec.validate().is_err());
        let mut spec = sample_spec();
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::Replay {
                path: "white space".into(),
            },
            steps_per_epoch: 64,
            seed: 7,
        });
        assert!(spec.validate().is_err());
    }

    #[test]
    fn init_file_loader() {
        let path = scratch_file("init_ok.txt", "# header\n1.5\n\n-2.5\n0.0 # inline\n");
        assert_eq!(load_init_file(&path).unwrap(), vec![1.5, -2.5, 0.0]);

        let empty = scratch_file("init_empty.txt", "# nothing\n\n");
        assert!(load_init_file(&empty).is_err());
        let non_finite = scratch_file("init_nan.txt", "1.0\nNaN\n");
        assert!(load_init_file(&non_finite).is_err());
        let malformed = scratch_file("init_bad.txt", "1.0\ntwo\n");
        assert!(load_init_file(&malformed).is_err());
        assert!(load_init_file("/nonexistent/init.txt").is_err());
    }

    #[test]
    fn replay_file_loader() {
        let path = scratch_file(
            "replay_ok.txt",
            "# two snapshots, trailing separator optional\n0 1\n1 2\n--\n0 2\n2 1\n--\n",
        );
        assert_eq!(
            load_replay_file(&path).unwrap(),
            vec![vec![(0, 1), (1, 2)], vec![(0, 2), (2, 1)]]
        );

        let no_snapshots = scratch_file("replay_empty.txt", "# nothing\n");
        assert!(load_replay_file(&no_snapshots).is_err());
        let empty_snapshot = scratch_file("replay_gap.txt", "0 1\n--\n--\n0 1\n");
        assert!(load_replay_file(&empty_snapshot).is_err());
        let malformed = scratch_file("replay_bad.txt", "0 1 2\n");
        assert!(load_replay_file(&malformed).is_err());
        assert!(load_replay_file("/nonexistent/replay.txt").is_err());
    }

    fn sync_spec(model: ModelSpec) -> ScenarioSpec {
        let mut spec = ScenarioSpec::new(model, GraphSpec::Petersen, 1);
        spec.stop = StopSpec::FixedPoint {
            epsilon: 1e-10,
            budget: 10_000,
        };
        spec
    }

    #[test]
    fn sync_models_round_trip_through_text() {
        for model in [
            ModelSpec::DeGroot { lazy: 0.5 },
            ModelSpec::Fj { alpha: 0.25 },
            ModelSpec::WeightedMedian,
        ] {
            let spec = sync_spec(model);
            spec.validate().unwrap();
            let text = spec.to_string();
            let parsed = ScenarioSpec::parse(&text).unwrap();
            assert_eq!(parsed, spec);
            assert_eq!(parsed.to_string(), text);
        }
        // Steps is the other admissible stop.
        let mut spec = sync_spec(ModelSpec::DeGroot { lazy: 0.0 });
        spec.stop = StopSpec::Steps { steps: 100 };
        spec.validate().unwrap();
    }

    #[test]
    fn sync_model_scenario_rules() {
        // Parameter ranges: lazy ∈ [0,1), alpha ∈ (0,1].
        for bad in [
            sync_spec(ModelSpec::DeGroot { lazy: 1.0 }),
            sync_spec(ModelSpec::DeGroot { lazy: -0.1 }),
            sync_spec(ModelSpec::Fj { alpha: 0.0 }),
            sync_spec(ModelSpec::Fj { alpha: 1.5 }),
        ] {
            assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        }
        // Deterministic rounds: replicas must stay 1…
        let mut bad = sync_spec(ModelSpec::DeGroot { lazy: 0.5 });
        bad.replicas = 4;
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …no churn…
        let mut bad = sync_spec(ModelSpec::Fj { alpha: 0.5 });
        bad.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 4 },
            steps_per_epoch: 64,
            seed: 7,
        });
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …no lane tier, no trace…
        let mut bad = sync_spec(ModelSpec::WeightedMedian);
        bad.tier = TierSpec::Lane;
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        let mut bad = sync_spec(ModelSpec::WeightedMedian);
        bad.stop = StopSpec::Steps { steps: 100 };
        bad.output = OutputSpec::Trace { every: 10 };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // …and only steps/fixed_point stops.
        let mut bad = sync_spec(ModelSpec::DeGroot { lazy: 0.5 });
        bad.stop = StopSpec::Consensus { budget: 100 };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // fixed_point conversely requires a sync model.
        let mut bad = sample_spec();
        bad.churn = None;
        bad.stop = StopSpec::FixedPoint {
            epsilon: 1e-9,
            budget: 100,
        };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn weights_round_trip_and_default_is_silent() {
        // The default unit weighting prints nothing, so every
        // pre-existing scenario keeps its canonical key byte-for-byte.
        let spec = sample_spec();
        assert!(!spec.to_string().contains("weights"));
        let mut weighted = sample_spec();
        weighted.churn = None;
        weighted.weights = WeightSpec::Uniform {
            lo: 0.5,
            hi: 2.0,
            seed: 11,
        };
        weighted.validate().unwrap();
        let text = weighted.to_string();
        assert!(text.contains("weights uniform lo=0.5 hi=2 seed=11"));
        let parsed = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(parsed, weighted);
        assert_eq!(parsed.to_string(), text);
    }

    #[test]
    fn weighted_scenario_rules() {
        let weights = WeightSpec::Uniform {
            lo: 0.5,
            hi: 2.0,
            seed: 11,
        };
        // Bad ranges: lo must be positive and ≤ hi, both finite.
        for (lo, hi) in [(0.0, 1.0), (-1.0, 1.0), (2.0, 1.0), (0.5, f64::NAN)] {
            let mut bad = sample_spec();
            bad.churn = None;
            bad.weights = WeightSpec::Uniform { lo, hi, seed: 1 };
            assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        }
        // Voter ignores values, so weighting it is a spec error.
        let mut bad = sample_spec();
        bad.churn = None;
        bad.model = ModelSpec::Voter;
        bad.init = InitSpec::Distinct;
        bad.stop = StopSpec::Steps { steps: 64 };
        bad.weights = weights;
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // Churn rewires edges out from under the weight vector.
        let mut bad = sample_spec();
        bad.weights = weights;
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // File graphs carry their own weights.
        let mut bad = sample_spec();
        bad.churn = None;
        bad.graph = GraphSpec::File {
            path: "edges.csv".into(),
            directed: false,
        };
        bad.weights = weights;
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn file_graph_round_trips_and_validates() {
        let mut spec = sync_spec(ModelSpec::DeGroot { lazy: 0.5 });
        spec.graph = GraphSpec::File {
            path: "data/edges.csv".into(),
            directed: true,
        };
        spec.validate().unwrap();
        let text = spec.to_string();
        assert!(text.contains("graph file=data/edges.csv directed=true"));
        let parsed = ScenarioSpec::parse(&text).unwrap();
        assert_eq!(parsed, spec);
        assert_eq!(parsed.to_string(), text);
        // `directed` defaults to false when omitted.
        let undirected =
            ScenarioSpec::parse("model voter\ngraph file=data/edges.csv\nstop steps count=1")
                .unwrap();
        assert_eq!(
            undirected.graph,
            GraphSpec::File {
                path: "data/edges.csv".into(),
                directed: false,
            }
        );
        // Empty path is a parse error; path tokens re-checked in validate.
        assert!(ScenarioSpec::parse("model voter\ngraph file=\nstop steps count=1").is_err());
        let mut bad = sync_spec(ModelSpec::DeGroot { lazy: 0.5 });
        bad.graph = GraphSpec::File {
            path: "white space.csv".into(),
            directed: false,
        };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
        // A directed file graph only runs the synchronous models.
        let mut bad = sample_spec();
        bad.churn = None;
        bad.graph = GraphSpec::File {
            path: "edges.csv".into(),
            directed: true,
        };
        assert!(matches!(bad.validate(), Err(SimError::Invalid(_))));
    }

    #[test]
    fn edge_list_file_loader() {
        // Unweighted, whitespace-separated, with comments.
        let path = scratch_file("edges_plain.txt", "# triangle\n0 1\n1 2\n2 0\n");
        let g = load_edge_list_file(&path, false).unwrap();
        assert_eq!((g.n(), g.m()), (3, 3));
        assert!(!g.is_weighted() && !g.is_directed());

        // Weighted CSV, node ids define n = max + 1.
        let path = scratch_file("edges_weighted.csv", "0,1,2.0\n1,3,0.5\n");
        let g = load_edge_list_file(&path, false).unwrap();
        assert_eq!((g.n(), g.m()), (4, 2));
        assert!(g.is_weighted());
        assert_eq!(g.row_weight_sum(1), 2.5);

        // Directed rows stay one-way.
        let g = load_edge_list_file(&path, true).unwrap();
        assert!(g.is_directed());
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(3), &[] as &[u32]);

        // Mixed arity, malformed tokens, bad weights, empty files.
        for (name, contents) in [
            ("edges_mixed.csv", "0,1\n1,2,2.0\n"),
            ("edges_badid.csv", "0,x\n"),
            ("edges_badw.csv", "0,1,heavy\n"),
            ("edges_nanw.csv", "0,1,NaN\n"),
            ("edges_negw.csv", "0,1,-2.0\n"),
            ("edges_arity.csv", "0 1 2.0 3\n"),
            ("edges_empty.csv", "# nothing\n"),
        ] {
            let path = scratch_file(name, contents);
            assert!(
                load_edge_list_file(&path, false).is_err(),
                "accepted: {contents:?}"
            );
        }
        assert!(load_edge_list_file("/nonexistent/edges.csv", false).is_err());
    }
}
