//! The per-trial sink row format shared by the CLI sinks
//! (`run_experiments --csv/--json`) and the `od-serve` daemon stream.
//!
//! One [`TrialRow`] is one trial of one cell: the cell coordinate
//! (scenario name, lattice index, crossed-axis label), the trial's
//! derived seed, and its results. Both renderings are hand-rolled (no
//! serde in the dependency tree):
//!
//! * **CSV** — RFC 4180: fields containing a comma, quote, CR or LF are
//!   double-quoted with internal quotes doubled, and *only* those (so
//!   existing comma-free sinks are byte-stable). The `scenario` field is
//!   a file path whenever the `.scn` file has no `scenario <name>` line
//!   — paths with commas are exactly how the unquoted format corrupted.
//! * **JSON** — flat objects, strings escaped via `{:?}`, non-finite
//!   floats as `null`.
//!
//! Keeping the rendering here means a daemon cache hit can replay rows
//! byte-identically to what the CLI would have written.

use od_stats::SeedSequence;

use crate::sim::TrialResult;
use crate::sweep::SweepReport;

/// The CSV header line matching [`TrialRow::csv_line`], without a
/// trailing newline.
pub const CSV_HEADER: &str =
    "scenario,cell,label,trial,seed,steps,converged,potential,estimate,winner,mutations";

/// One per-trial sink record: a cell coordinate plus the trial's
/// results.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialRow {
    /// The scenario name (`scenario <name>` line) or, absent one, the
    /// `.scn` file path.
    pub scenario: String,
    /// The cell's lattice position (0 for a plain scenario).
    pub cell: usize,
    /// The cell's crossed-axis `key=value` label (empty for a plain
    /// scenario).
    pub label: String,
    /// Trial index within the cell.
    pub trial: usize,
    /// The trial's derived seed:
    /// `SeedSequence::new(cell.spec.seed).seed(trial)` — reproduces the
    /// trial standalone.
    pub seed: u64,
    /// Steps the trial took.
    pub steps: u64,
    /// Whether the stopping condition was met.
    pub converged: bool,
    /// The stopped potential (`NaN` for voter trials).
    pub potential: f64,
    /// The `F` estimate (`NaN` for voter trials).
    pub estimate: f64,
    /// The winning opinion (voter trials at consensus).
    pub winner: Option<u32>,
    /// Topology mutations the trial's environment saw.
    pub mutations: u64,
}

/// RFC-4180 field escaping: quote only when the field contains a comma,
/// quote, CR or LF (doubling internal quotes), so comma-free fields
/// render exactly as before.
fn csv_field(field: &str) -> String {
    if field.contains(['"', ',', '\r', '\n']) {
        format!("\"{}\"", field.replace('"', "\"\""))
    } else {
        field.to_string()
    }
}

impl TrialRow {
    /// The row as one CSV line (no trailing newline), fields in
    /// [`CSV_HEADER`] order, `scenario` and `label` RFC-4180-escaped.
    pub fn csv_line(&self) -> String {
        format!(
            "{},{},{},{},{},{},{},{},{},{},{}",
            csv_field(&self.scenario),
            self.cell,
            csv_field(&self.label),
            self.trial,
            self.seed,
            self.steps,
            self.converged,
            self.potential,
            self.estimate,
            self.winner.map(|w| w.to_string()).unwrap_or_default(),
            self.mutations,
        )
    }

    /// The row as one flat JSON object (no surrounding whitespace),
    /// non-finite floats as `null`.
    pub fn json_object(&self) -> String {
        let num = |x: f64| {
            if x.is_finite() {
                x.to_string()
            } else {
                "null".to_string()
            }
        };
        format!(
            "{{\"scenario\":{:?},\"cell\":{},\"label\":{:?},\"trial\":{},\"seed\":{},\
             \"steps\":{},\"converged\":{},\"potential\":{},\"estimate\":{},\"winner\":{},\
             \"mutations\":{}}}",
            self.scenario,
            self.cell,
            self.label,
            self.trial,
            self.seed,
            self.steps,
            self.converged,
            num(self.potential),
            num(self.estimate),
            self.winner.map_or("null".to_string(), |w| w.to_string()),
            self.mutations,
        )
    }
}

/// Flattens one cell's trials into sink rows. Trial `i` runs from
/// `SeedSequence::new(master_seed).seed(i)` — the derivation `od-sim`'s
/// Monte-Carlo runner uses — so the recorded seed reproduces the trial
/// standalone.
pub fn cell_rows(
    scenario: &str,
    cell: usize,
    label: &str,
    master_seed: u64,
    trials: &[TrialResult],
) -> Vec<TrialRow> {
    let seeds = SeedSequence::new(master_seed);
    trials
        .iter()
        .enumerate()
        .map(|(i, trial)| TrialRow {
            scenario: scenario.to_string(),
            cell,
            label: label.to_string(),
            trial: i,
            seed: seeds.seed(i as u64),
            steps: trial.steps,
            converged: trial.converged,
            potential: trial.potential,
            estimate: trial.estimate,
            winner: trial.winner,
            mutations: trial.mutations,
        })
        .collect()
}

/// Flattens a whole sweep report into sink rows, cell expansion order.
pub fn sweep_rows(scenario: &str, report: &SweepReport) -> Vec<TrialRow> {
    report
        .cells
        .iter()
        .flat_map(|cell| {
            cell_rows(
                scenario,
                cell.cell.index,
                &cell.cell.label,
                cell.cell.spec.seed,
                &cell.report.trials,
            )
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TrialRow {
        TrialRow {
            scenario: "plain".into(),
            cell: 2,
            label: "k=1 eps=0.001".into(),
            trial: 3,
            seed: 42,
            steps: 100,
            converged: true,
            potential: 0.5,
            estimate: f64::NAN,
            winner: None,
            mutations: 0,
        }
    }

    #[test]
    fn plain_fields_stay_unquoted() {
        let line = row().csv_line();
        assert_eq!(line, "plain,2,k=1 eps=0.001,3,42,100,true,0.5,NaN,,0");
    }

    #[test]
    fn comma_and_quote_fields_are_rfc4180_quoted() {
        let mut r = row();
        r.scenario = "dir,with,commas/file.scn".into();
        r.label = "says \"hi\"".into();
        let line = r.csv_line();
        assert!(line.starts_with("\"dir,with,commas/file.scn\",2,\"says \"\"hi\"\"\",3,"));
        // A CSV reader that honours quoting recovers exactly 11 fields.
        let mut fields = Vec::new();
        let mut field = String::new();
        let mut quoted = false;
        let mut chars = line.chars().peekable();
        while let Some(c) = chars.next() {
            match c {
                '"' if quoted && chars.peek() == Some(&'"') => {
                    field.push('"');
                    chars.next();
                }
                '"' => quoted = !quoted,
                ',' if !quoted => fields.push(std::mem::take(&mut field)),
                c => field.push(c),
            }
        }
        fields.push(field);
        assert_eq!(fields.len(), 11);
        assert_eq!(fields[0], "dir,with,commas/file.scn");
        assert_eq!(fields[2], "says \"hi\"");
    }

    #[test]
    fn json_escapes_strings_and_nulls_non_finite() {
        let mut r = row();
        r.scenario = "has \"quotes\"".into();
        let json = r.json_object();
        assert!(json.contains("\"scenario\":\"has \\\"quotes\\\"\""));
        assert!(json.contains("\"estimate\":null"));
        assert!(json.contains("\"winner\":null"));
    }

    #[test]
    fn cell_rows_derive_trial_seeds() {
        let trials = vec![
            TrialResult {
                steps: 10,
                converged: true,
                potential: 0.1,
                estimate: 0.2,
                winner: None,
                mutations: 0,
            };
            3
        ];
        let rows = cell_rows("s", 1, "k=2", 7, &trials);
        let seq = SeedSequence::new(7);
        for (i, row) in rows.iter().enumerate() {
            assert_eq!(row.trial, i);
            assert_eq!(row.seed, seq.seed(i as u64));
            assert_eq!(row.cell, 1);
        }
    }
}
