//! Property suite for the scenario text format: `parse ∘ format = id`
//! over randomly generated valid specs, and rejection of malformed
//! inputs.

use od_sim::{
    ChurnModelSpec, ChurnSpec, GraphSpec, InitSpec, ModelSpec, OutputSpec, PotentialSpec,
    ScenarioSpec, SimError, StopRuleSpec, StopSpec, TierSpec, WeightSpec,
};
use proptest::prelude::*;

/// Deterministically expands a handful of random draws into one valid
/// spec, covering every model, graph family, init, churn, stop and
/// output variant.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    model_pick: usize,
    graph_pick: usize,
    init_pick: usize,
    churn_pick: usize,
    stop_pick: usize,
    named: bool,
    alpha: f64,
    p: f64,
    size: usize,
    seed: u64,
    replicas: usize,
    epoch: u64,
    budget_epochs: u64,
) -> ScenarioSpec {
    let model = match model_pick % 3 {
        0 => ModelSpec::Node {
            alpha,
            k: 1,
            lazy: model_pick.is_multiple_of(2),
        },
        1 => ModelSpec::Edge {
            alpha,
            lazy: model_pick.is_multiple_of(2),
        },
        _ => ModelSpec::Voter,
    };
    let n = size.max(6);
    let graph = match graph_pick % 17 {
        0 => GraphSpec::Cycle { n },
        1 => GraphSpec::Path { n },
        2 => GraphSpec::Complete { n },
        3 => GraphSpec::Star { n },
        4 => GraphSpec::CompleteBipartite { a: n / 2, b: n / 2 },
        5 => GraphSpec::Grid { rows: 3, cols: n },
        6 => GraphSpec::Torus { rows: 4, cols: n },
        7 => GraphSpec::Hypercube { dim: 3 + n % 4 },
        8 => GraphSpec::BinaryTree { levels: 3 + n % 3 },
        9 => GraphSpec::Petersen,
        10 => GraphSpec::Barbell { k: n },
        11 => GraphSpec::Lollipop { k: n, tail: n / 2 },
        12 => GraphSpec::Gnp { n, p, seed },
        13 => GraphSpec::Gnm { n, m: 2 * n, seed },
        14 => GraphSpec::RandomRegular {
            n: n + n % 2,
            d: 4,
            seed,
        },
        15 => GraphSpec::WattsStrogatz { n, k: 2, p, seed },
        _ => GraphSpec::BarabasiAlbert { n, m: 2, seed },
    };
    let init = if model.is_averaging() {
        match init_pick % 4 {
            0 => InitSpec::PmOne,
            1 => InitSpec::Linear { lo: -p, hi: alpha },
            2 => InitSpec::Constant { value: alpha },
            _ => InitSpec::Indicator { node: n / 2 },
        }
    } else {
        match init_pick % 2 {
            0 => InitSpec::Distinct,
            _ => InitSpec::Opinions {
                levels: 1 + init_pick % 5,
            },
        }
    };
    let churn = match churn_pick % 4 {
        0 => None,
        1 => Some(ChurnModelSpec::EdgeSwap {
            swaps: churn_pick % 8,
        }),
        2 => Some(ChurnModelSpec::Rewire {
            rewires: 1 + churn_pick % 8,
            min_degree: 1,
        }),
        _ => Some(ChurnModelSpec::GnpResample { p, min_degree: 2 }),
    }
    .map(|model| ChurnSpec {
        model,
        steps_per_epoch: epoch,
        seed,
    });
    // Budgets are whole epochs whenever churn is present.
    let budget = budget_epochs * epoch;
    let stop = if model.is_averaging() {
        match stop_pick % 3 {
            0 => StopSpec::Steps { steps: budget },
            _ => StopSpec::Converge {
                epsilon: p * 1e-6,
                rule: if churn.is_some() || stop_pick.is_multiple_of(2) {
                    StopRuleSpec::Block
                } else {
                    StopRuleSpec::Exact
                },
                potential: if churn.is_none() && stop_pick % 3 == 2 {
                    PotentialSpec::Uniform
                } else {
                    PotentialSpec::Pi
                },
                budget,
            },
        }
    } else {
        match stop_pick % 2 {
            0 => StopSpec::Steps { steps: budget },
            _ => StopSpec::Consensus { budget },
        }
    };
    let trace_ok = model.is_averaging()
        && churn.is_none()
        && matches!(stop, StopSpec::Steps { .. })
        && replicas == 1;
    ScenarioSpec {
        name: named.then(|| format!("prop-{graph_pick}-{stop_pick}")),
        model,
        graph,
        weights: WeightSpec::Unit,
        churn,
        init,
        replicas,
        seed: seed.wrapping_mul(0x9E37_79B9),
        stop,
        check_every: (seed % 5) * 100,
        threads: replicas % 4,
        batch: replicas % 7,
        // Lane is only valid for averaging models with block/pi stopping
        // and no trace; the generator opts in exactly there.
        tier: if model.is_averaging()
            && !(trace_ok && stop_pick.is_multiple_of(5))
            && !matches!(
                stop,
                StopSpec::Converge {
                    rule: StopRuleSpec::Exact,
                    ..
                } | StopSpec::Converge {
                    potential: PotentialSpec::Uniform,
                    ..
                }
            )
            && init_pick.is_multiple_of(3)
        {
            TierSpec::Lane
        } else {
            TierSpec::Exact
        },
        output: if trace_ok && stop_pick.is_multiple_of(5) {
            OutputSpec::Trace { every: epoch }
        } else {
            OutputSpec::Reports
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ format = id over random valid specs, and the canonical
    /// text form is a fixed point of the round trip.
    #[test]
    fn parse_format_roundtrip(
        model_pick in 0usize..64,
        graph_pick in 0usize..64,
        init_pick in 0usize..64,
        churn_pick in 0usize..64,
        stop_pick in 0usize..64,
        named in 0usize..2,
        alpha in 0.0f64..1.0,
        p in 0.01f64..0.99,
        size in 6usize..40,
        seed in 0u64..u64::MAX,
        replicas in 1usize..64,
        epoch in 1u64..1000,
        budget_epochs in 1u64..1000,
    ) {
        let spec = build_spec(
            model_pick, graph_pick, init_pick, churn_pick, stop_pick, named == 1,
            alpha, p, size, seed, replicas, epoch, budget_epochs,
        );
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec: {spec:?}");
        let text = spec.to_string();
        let parsed = match ScenarioSpec::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("format not parseable: {e}\n{text}"))),
        };
        prop_assert_eq!(&parsed, &spec, "round trip changed the spec");
        prop_assert_eq!(parsed.to_string(), text, "canonical form is not a fixed point");
    }

    /// Corrupting any single line of a valid canonical form is caught:
    /// either a parse error or a validation error, never a silently
    /// different spec.
    #[test]
    fn corrupted_lines_are_rejected_or_detected(
        graph_pick in 0usize..64,
        stop_pick in 0usize..64,
        line_pick in 0usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let spec = build_spec(
            0, graph_pick, 0, 0, stop_pick, false,
            0.5, 0.3, 12, seed, 8, 10, 50,
        );
        let text = spec.to_string();
        let lines: Vec<&str> = text.lines().collect();
        let target = line_pick % lines.len();
        let mut corrupted: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        corrupted[target] = format!("{} bogus=1", corrupted[target]);
        let outcome = ScenarioSpec::parse(&corrupted.join("\n"));
        match outcome {
            Err(_) => {}
            Ok(reparsed) => prop_assert_eq!(
                reparsed, spec,
                "corruption silently changed the spec on line {}", target + 1
            ),
        }
    }
}

#[test]
fn rejection_catalogue() {
    // The concrete malformed-spec catalogue the satellite task names:
    // bad epsilon, zero replicas, unknown generator — plus structural
    // errors around them.
    let base = "model node alpha=0.5 k=2 lazy=false\ngraph torus rows=4 cols=4\n";
    let cases = [
        // Bad epsilon.
        format!("{base}stop converge eps=-1e-9 rule=exact potential=pi budget=100"),
        format!("{base}stop converge eps=nope rule=exact potential=pi budget=100"),
        // Non-finite floats: f64::from_str accepts these tokens, the
        // spec format must not.
        format!("{base}stop converge eps=NaN rule=exact potential=pi budget=100"),
        format!("{base}stop converge eps=inf rule=exact potential=pi budget=100"),
        "model node alpha=NaN k=2 lazy=false\ngraph torus rows=4 cols=4\nstop steps count=10"
            .to_string(),
        format!("{base}init linear lo=NaN hi=1\nstop steps count=10"),
        "model node alpha=0.5 k=2 lazy=false\ngraph gnp n=16 p=inf seed=1\nstop steps count=10"
            .to_string(),
        // Unknown kernel tier.
        format!("{base}stop steps count=10\ntier warp"),
        // Lane tier with the voter model.
        "model voter\ngraph petersen\nstop steps count=10\ntier lane".to_string(),
        // Zero replicas.
        format!("{base}replicas 0\nstop steps count=10"),
        // Unknown generator.
        "model voter\ngraph dodecahedron n=20\nstop steps count=10".to_string(),
        // Unknown stop rule / potential.
        format!("{base}stop converge eps=1e-9 rule=fuzzy potential=pi budget=100"),
        format!("{base}stop converge eps=1e-9 rule=exact potential=psi budget=100"),
        // Missing required keys.
        "model voter\nstop steps count=10".to_string(),
        "graph petersen\nstop steps count=10".to_string(),
        format!("{base}replicas 4"),
    ];
    for text in &cases {
        let parsed = ScenarioSpec::parse(text);
        assert!(parsed.is_err(), "accepted malformed spec:\n{text}");
        match parsed.unwrap_err() {
            SimError::Parse { .. } | SimError::Invalid(_) => {}
            other => panic!("unexpected error class {other:?} for:\n{text}"),
        }
    }
}

#[test]
fn weight_rejection_catalogue() {
    // The weighted grammar gets the same treatment: every malformed
    // weights/file spelling dies at parse or validate, never at run time.
    let base = "model node alpha=0.5 k=2 lazy=false\ngraph torus rows=4 cols=4\n";
    let cases = [
        // Non-finite bounds (f64::from_str accepts the tokens).
        format!("{base}weights uniform lo=NaN hi=2 seed=1\nstop steps count=10"),
        format!("{base}weights uniform lo=0.5 hi=inf seed=1\nstop steps count=10"),
        // Non-positive or inverted range.
        format!("{base}weights uniform lo=0 hi=2 seed=1\nstop steps count=10"),
        format!("{base}weights uniform lo=-1 hi=2 seed=1\nstop steps count=10"),
        format!("{base}weights uniform lo=2 hi=1 seed=1\nstop steps count=10"),
        // Unknown weighting family, missing keys.
        format!("{base}weights gaussian mu=1 sigma=0.1 seed=1\nstop steps count=10"),
        format!("{base}weights uniform lo=0.5 seed=1\nstop steps count=10"),
        // Weights on models/shapes that cannot honour them.
        "model voter\ngraph petersen\nweights uniform lo=0.5 hi=2 seed=1\nstop steps count=10"
            .to_string(),
        format!(
            "{base}weights uniform lo=0.5 hi=2 seed=1\nchurn edge_swap swaps=2 epoch=8 seed=1\nstop steps count=8"
        ),
        "model degroot lazy=0.5\ngraph file=edges.csv\nweights uniform lo=0.5 hi=2 seed=1\nstop steps count=10"
            .to_string(),
        // File-graph paths that cannot survive the token grammar.
        "model degroot lazy=0.5\ngraph file=\nstop steps count=10".to_string(),
        // Sync-model parameters out of range.
        "model degroot lazy=1.5\ngraph petersen\nstop steps count=10".to_string(),
        "model fj alpha=0\ngraph petersen\nstop steps count=10".to_string(),
        "model fj alpha=NaN\ngraph petersen\nstop steps count=10".to_string(),
        // fixed_point stop needs a sync model and a finite epsilon.
        format!("{base}stop fixed_point eps=1e-9 budget=100"),
        "model degroot lazy=0.5\ngraph petersen\nstop fixed_point eps=NaN budget=100".to_string(),
    ];
    for text in &cases {
        let parsed = ScenarioSpec::parse(text);
        assert!(parsed.is_err(), "accepted malformed spec:\n{text}");
        match parsed.unwrap_err() {
            SimError::Parse { .. } | SimError::Invalid(_) => {}
            other => panic!("unexpected error class {other:?} for:\n{text}"),
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Corrupting any single per-edge weight with a non-finite or
    /// negative value — or zeroing out a whole row — is rejected at
    /// construction, and a failed attach leaves the graph unweighted.
    #[test]
    fn corrupted_weight_vectors_are_rejected(
        edge_pick in 0usize..64,
        class in 0usize..4,
        node_pick in 0usize..64,
    ) {
        let n = 12usize;
        let g = od_graph::generators::cycle(n).unwrap();
        let m = g.m();
        let mut weights = vec![1.0f64; m];
        match class {
            0 => weights[edge_pick % m] = f64::NAN,
            1 => weights[edge_pick % m] = f64::INFINITY,
            2 => weights[edge_pick % m] = -0.25,
            _ => {
                // Zero every edge incident to one node: that row of the
                // weighted walk matrix would be 0/0.
                let u = (node_pick % n) as u32;
                for (i, (a, b)) in g.edges().enumerate() {
                    if a == u || b == u {
                        weights[i] = 0.0;
                    }
                }
            }
        }
        let mut gw = g.clone();
        prop_assert!(gw.attach_weights(&weights).is_err());
        prop_assert!(!gw.is_weighted(), "failed attach must not leave partial weights");
        // The same vector dies inside the weighted-edge constructor too.
        let weighted_edges: Vec<(u32, u32, f64)> = g
            .edges()
            .zip(&weights)
            .map(|((a, b), &w)| (a, b, w))
            .collect();
        prop_assert!(od_graph::Graph::from_weighted_edges(n, &weighted_edges).is_err());
    }
}
