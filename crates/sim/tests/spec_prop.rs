//! Property suite for the scenario text format: `parse ∘ format = id`
//! over randomly generated valid specs, and rejection of malformed
//! inputs.

use od_sim::{
    ChurnModelSpec, ChurnSpec, GraphSpec, InitSpec, ModelSpec, OutputSpec, PotentialSpec,
    ScenarioSpec, SimError, StopRuleSpec, StopSpec, TierSpec,
};
use proptest::prelude::*;

/// Deterministically expands a handful of random draws into one valid
/// spec, covering every model, graph family, init, churn, stop and
/// output variant.
#[allow(clippy::too_many_arguments)]
fn build_spec(
    model_pick: usize,
    graph_pick: usize,
    init_pick: usize,
    churn_pick: usize,
    stop_pick: usize,
    named: bool,
    alpha: f64,
    p: f64,
    size: usize,
    seed: u64,
    replicas: usize,
    epoch: u64,
    budget_epochs: u64,
) -> ScenarioSpec {
    let model = match model_pick % 3 {
        0 => ModelSpec::Node {
            alpha,
            k: 1,
            lazy: model_pick.is_multiple_of(2),
        },
        1 => ModelSpec::Edge {
            alpha,
            lazy: model_pick.is_multiple_of(2),
        },
        _ => ModelSpec::Voter,
    };
    let n = size.max(6);
    let graph = match graph_pick % 17 {
        0 => GraphSpec::Cycle { n },
        1 => GraphSpec::Path { n },
        2 => GraphSpec::Complete { n },
        3 => GraphSpec::Star { n },
        4 => GraphSpec::CompleteBipartite { a: n / 2, b: n / 2 },
        5 => GraphSpec::Grid { rows: 3, cols: n },
        6 => GraphSpec::Torus { rows: 4, cols: n },
        7 => GraphSpec::Hypercube { dim: 3 + n % 4 },
        8 => GraphSpec::BinaryTree { levels: 3 + n % 3 },
        9 => GraphSpec::Petersen,
        10 => GraphSpec::Barbell { k: n },
        11 => GraphSpec::Lollipop { k: n, tail: n / 2 },
        12 => GraphSpec::Gnp { n, p, seed },
        13 => GraphSpec::Gnm { n, m: 2 * n, seed },
        14 => GraphSpec::RandomRegular {
            n: n + n % 2,
            d: 4,
            seed,
        },
        15 => GraphSpec::WattsStrogatz { n, k: 2, p, seed },
        _ => GraphSpec::BarabasiAlbert { n, m: 2, seed },
    };
    let init = if model.is_averaging() {
        match init_pick % 4 {
            0 => InitSpec::PmOne,
            1 => InitSpec::Linear { lo: -p, hi: alpha },
            2 => InitSpec::Constant { value: alpha },
            _ => InitSpec::Indicator { node: n / 2 },
        }
    } else {
        match init_pick % 2 {
            0 => InitSpec::Distinct,
            _ => InitSpec::Opinions {
                levels: 1 + init_pick % 5,
            },
        }
    };
    let churn = match churn_pick % 4 {
        0 => None,
        1 => Some(ChurnModelSpec::EdgeSwap {
            swaps: churn_pick % 8,
        }),
        2 => Some(ChurnModelSpec::Rewire {
            rewires: 1 + churn_pick % 8,
            min_degree: 1,
        }),
        _ => Some(ChurnModelSpec::GnpResample { p, min_degree: 2 }),
    }
    .map(|model| ChurnSpec {
        model,
        steps_per_epoch: epoch,
        seed,
    });
    // Budgets are whole epochs whenever churn is present.
    let budget = budget_epochs * epoch;
    let stop = if model.is_averaging() {
        match stop_pick % 3 {
            0 => StopSpec::Steps { steps: budget },
            _ => StopSpec::Converge {
                epsilon: p * 1e-6,
                rule: if churn.is_some() || stop_pick.is_multiple_of(2) {
                    StopRuleSpec::Block
                } else {
                    StopRuleSpec::Exact
                },
                potential: if churn.is_none() && stop_pick % 3 == 2 {
                    PotentialSpec::Uniform
                } else {
                    PotentialSpec::Pi
                },
                budget,
            },
        }
    } else {
        match stop_pick % 2 {
            0 => StopSpec::Steps { steps: budget },
            _ => StopSpec::Consensus { budget },
        }
    };
    let trace_ok = model.is_averaging()
        && churn.is_none()
        && matches!(stop, StopSpec::Steps { .. })
        && replicas == 1;
    ScenarioSpec {
        name: named.then(|| format!("prop-{graph_pick}-{stop_pick}")),
        model,
        graph,
        churn,
        init,
        replicas,
        seed: seed.wrapping_mul(0x9E37_79B9),
        stop,
        check_every: (seed % 5) * 100,
        threads: replicas % 4,
        batch: replicas % 7,
        // Lane is only valid for averaging models with block/pi stopping
        // and no trace; the generator opts in exactly there.
        tier: if model.is_averaging()
            && !(trace_ok && stop_pick.is_multiple_of(5))
            && !matches!(
                stop,
                StopSpec::Converge {
                    rule: StopRuleSpec::Exact,
                    ..
                } | StopSpec::Converge {
                    potential: PotentialSpec::Uniform,
                    ..
                }
            )
            && init_pick.is_multiple_of(3)
        {
            TierSpec::Lane
        } else {
            TierSpec::Exact
        },
        output: if trace_ok && stop_pick.is_multiple_of(5) {
            OutputSpec::Trace { every: epoch }
        } else {
            OutputSpec::Reports
        },
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// parse ∘ format = id over random valid specs, and the canonical
    /// text form is a fixed point of the round trip.
    #[test]
    fn parse_format_roundtrip(
        model_pick in 0usize..64,
        graph_pick in 0usize..64,
        init_pick in 0usize..64,
        churn_pick in 0usize..64,
        stop_pick in 0usize..64,
        named in 0usize..2,
        alpha in 0.0f64..1.0,
        p in 0.01f64..0.99,
        size in 6usize..40,
        seed in 0u64..u64::MAX,
        replicas in 1usize..64,
        epoch in 1u64..1000,
        budget_epochs in 1u64..1000,
    ) {
        let spec = build_spec(
            model_pick, graph_pick, init_pick, churn_pick, stop_pick, named == 1,
            alpha, p, size, seed, replicas, epoch, budget_epochs,
        );
        prop_assert!(spec.validate().is_ok(), "generator produced an invalid spec: {spec:?}");
        let text = spec.to_string();
        let parsed = match ScenarioSpec::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("format not parseable: {e}\n{text}"))),
        };
        prop_assert_eq!(&parsed, &spec, "round trip changed the spec");
        prop_assert_eq!(parsed.to_string(), text, "canonical form is not a fixed point");
    }

    /// Corrupting any single line of a valid canonical form is caught:
    /// either a parse error or a validation error, never a silently
    /// different spec.
    #[test]
    fn corrupted_lines_are_rejected_or_detected(
        graph_pick in 0usize..64,
        stop_pick in 0usize..64,
        line_pick in 0usize..16,
        seed in 0u64..u64::MAX,
    ) {
        let spec = build_spec(
            0, graph_pick, 0, 0, stop_pick, false,
            0.5, 0.3, 12, seed, 8, 10, 50,
        );
        let text = spec.to_string();
        let lines: Vec<&str> = text.lines().collect();
        let target = line_pick % lines.len();
        let mut corrupted: Vec<String> = lines.iter().map(|l| (*l).to_string()).collect();
        corrupted[target] = format!("{} bogus=1", corrupted[target]);
        let outcome = ScenarioSpec::parse(&corrupted.join("\n"));
        match outcome {
            Err(_) => {}
            Ok(reparsed) => prop_assert_eq!(
                reparsed, spec,
                "corruption silently changed the spec on line {}", target + 1
            ),
        }
    }
}

#[test]
fn rejection_catalogue() {
    // The concrete malformed-spec catalogue the satellite task names:
    // bad epsilon, zero replicas, unknown generator — plus structural
    // errors around them.
    let base = "model node alpha=0.5 k=2 lazy=false\ngraph torus rows=4 cols=4\n";
    let cases = [
        // Bad epsilon.
        format!("{base}stop converge eps=-1e-9 rule=exact potential=pi budget=100"),
        format!("{base}stop converge eps=nope rule=exact potential=pi budget=100"),
        // Non-finite floats: f64::from_str accepts these tokens, the
        // spec format must not.
        format!("{base}stop converge eps=NaN rule=exact potential=pi budget=100"),
        format!("{base}stop converge eps=inf rule=exact potential=pi budget=100"),
        "model node alpha=NaN k=2 lazy=false\ngraph torus rows=4 cols=4\nstop steps count=10"
            .to_string(),
        format!("{base}init linear lo=NaN hi=1\nstop steps count=10"),
        "model node alpha=0.5 k=2 lazy=false\ngraph gnp n=16 p=inf seed=1\nstop steps count=10"
            .to_string(),
        // Unknown kernel tier.
        format!("{base}stop steps count=10\ntier warp"),
        // Lane tier with the voter model.
        "model voter\ngraph petersen\nstop steps count=10\ntier lane".to_string(),
        // Zero replicas.
        format!("{base}replicas 0\nstop steps count=10"),
        // Unknown generator.
        "model voter\ngraph dodecahedron n=20\nstop steps count=10".to_string(),
        // Unknown stop rule / potential.
        format!("{base}stop converge eps=1e-9 rule=fuzzy potential=pi budget=100"),
        format!("{base}stop converge eps=1e-9 rule=exact potential=psi budget=100"),
        // Missing required keys.
        "model voter\nstop steps count=10".to_string(),
        "graph petersen\nstop steps count=10".to_string(),
        format!("{base}replicas 4"),
    ];
    for text in &cases {
        let parsed = ScenarioSpec::parse(text);
        assert!(parsed.is_err(), "accepted malformed spec:\n{text}");
        match parsed.unwrap_err() {
            SimError::Parse { .. } | SimError::Invalid(_) => {}
            other => panic!("unexpected error class {other:?} for:\n{text}"),
        }
    }
}
