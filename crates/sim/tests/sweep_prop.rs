//! Property suite for sweep expansion and the common-random-number
//! contract: `parse ∘ format = id` over random swept specs, cell count
//! = grid product, shared-graph identity, CRN pairing (trial `i` is
//! bit-identical across cells when the swept parameter doesn't affect
//! it), and the variance regression — the paired CRN contrast's CI is
//! strictly tighter than independent seeding at equal replicas.

use od_sim::{
    run_sweep, ChurnModelSpec, ChurnSpec, GraphSpec, ModelSpec, PotentialSpec, ScenarioSpec,
    SimError, StopRuleSpec, StopSpec, SweepAxis, SweepSpec,
};
use od_stats::welch_t_ci;
use proptest::prelude::*;

/// A valid convergence base spec for sweeps: NodeModel on a cycle,
/// exact stopping (block under churn).
fn base_spec(n: usize, replicas: usize, seed: u64, churned: bool) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new(
        ModelSpec::Node {
            alpha: 0.5,
            k: 1,
            lazy: false,
        },
        GraphSpec::Cycle { n },
        0,
    );
    spec.replicas = replicas;
    spec.seed = seed;
    if churned {
        spec.churn = Some(ChurnSpec {
            model: ChurnModelSpec::EdgeSwap { swaps: 1 },
            steps_per_epoch: n as u64,
            seed: seed ^ 0xC0FFEE,
        });
    }
    spec.stop = StopSpec::Converge {
        epsilon: 1e-6,
        rule: if churned {
            StopRuleSpec::Block
        } else {
            StopRuleSpec::Exact
        },
        potential: PotentialSpec::Pi,
        // Whole epochs under churn (epoch = n).
        budget: if churned {
            n as u64 * 100_000
        } else {
            4_000_000
        },
    };
    spec
}

/// Deterministically expands random draws into a valid sweep over
/// [`base_spec`], covering every axis kind (zipped axes sized to the
/// crossed product).
fn build_sweep(
    n: usize,
    replicas: usize,
    seed: u64,
    churned: bool,
    axis_mask: usize,
    len_a: usize,
    len_b: usize,
) -> SweepSpec {
    let base = base_spec(n, replicas, seed, churned);
    let mut axes = Vec::new();
    if axis_mask & 1 != 0 {
        axes.push(SweepAxis::Graph(
            (0..len_a)
                .map(|i| GraphSpec::Cycle { n: n + 2 * i })
                .collect(),
        ));
    }
    if axis_mask & 2 != 0 {
        axes.push(SweepAxis::N((0..len_b).map(|i| n + 4 * i).collect()));
    }
    if axis_mask & 4 != 0 {
        axes.push(SweepAxis::K(vec![1, 2]));
    }
    if axis_mask & 8 != 0 {
        axes.push(SweepAxis::Eps(
            (0..len_a).map(|i| 1e-6 / 10f64.powi(i as i32)).collect(),
        ));
    }
    if axis_mask & 16 != 0 {
        axes.push(SweepAxis::Replicas((1..=len_b).map(|r| r * 2).collect()));
    }
    if churned && axis_mask & 32 != 0 {
        axes.push(SweepAxis::Churn((0..len_a).collect()));
    }
    let cells: usize = axes
        .iter()
        .filter(|a| a.is_crossed())
        .map(SweepAxis::len)
        .product();
    if axis_mask & 64 != 0 {
        axes.push(SweepAxis::Seed(
            (0..cells as u64)
                .map(|i| seed.wrapping_add(i * 7919))
                .collect(),
        ));
    }
    if churned && axis_mask & 128 != 0 {
        axes.push(SweepAxis::ChurnSeed(
            (0..cells as u64).map(|i| seed ^ (i * 6271)).collect(),
        ));
    }
    SweepSpec { base, axes }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// parse ∘ format = id over random swept specs, the canonical text
    /// is a fixed point, and the cell count is the grid product.
    #[test]
    fn sweep_roundtrip_and_cell_count(
        n in 6usize..20,
        replicas in 1usize..16,
        seed in 0u64..u64::MAX,
        churned_pick in 0usize..2,
        axis_mask in 0usize..256,
        len_a in 1usize..4,
        len_b in 1usize..4,
    ) {
        let churned = churned_pick == 1;
        let sweep = build_sweep(n, replicas, seed, churned, axis_mask, len_a, len_b);
        prop_assert!(
            sweep.validate().is_ok(),
            "generator produced an invalid sweep: {sweep:?}"
        );
        let text = sweep.to_string();
        let parsed = match SweepSpec::parse(&text) {
            Ok(parsed) => parsed,
            Err(e) => return Err(TestCaseError::fail(format!("format not parseable: {e}\n{text}"))),
        };
        prop_assert_eq!(&parsed, &sweep, "round trip changed the sweep");
        prop_assert_eq!(parsed.to_string(), text, "canonical form is not a fixed point");

        let expected: usize = sweep
            .axes
            .iter()
            .filter(|a| a.is_crossed())
            .map(SweepAxis::len)
            .product();
        prop_assert_eq!(sweep.cell_count(), expected);
        let cells = sweep.cells().unwrap();
        prop_assert_eq!(cells.len(), expected);
        for (i, cell) in cells.iter().enumerate() {
            prop_assert_eq!(cell.index, i);
            prop_assert!(cell.spec.validate().is_ok());
        }
        // CRN iff no zipped seed axis.
        prop_assert_eq!(sweep.is_crn(), axis_mask & 64 == 0);
    }
}

#[test]
fn shared_graph_identity() {
    // 6 cells, but only the graph axis changes the topology: 2 builds.
    let sweep = SweepSpec {
        base: base_spec(12, 2, 5, false),
        axes: vec![
            SweepAxis::Graph(vec![
                GraphSpec::Cycle { n: 12 },
                GraphSpec::Complete { n: 12 },
            ]),
            SweepAxis::Eps(vec![1e-3, 1e-4, 1e-5]),
        ],
    };
    let report = run_sweep(&sweep).unwrap();
    assert_eq!(report.cells.len(), 6);
    assert_eq!(report.distinct_graphs, 2);
    // Cells on the same graph point at the same shared build.
    assert_eq!(report.cells[0].graph_index, report.cells[1].graph_index);
    assert_ne!(report.cells[0].graph_index, report.cells[3].graph_index);
}

/// The CRN pairing contract: replicas is a parameter that does not
/// affect trial `i`'s randomness, so under the shared master seed trial
/// `i` of every cell is bit-identical.
#[test]
fn crn_pairs_trials_bit_identically() {
    let sweep = SweepSpec {
        base: base_spec(10, 4, 99, false),
        axes: vec![SweepAxis::Replicas(vec![4, 8])],
    };
    assert!(sweep.is_crn());
    let report = run_sweep(&sweep).unwrap();
    let (a, b) = (&report.cells[0].report, &report.cells[1].report);
    assert_eq!(a.trials.len(), 4);
    assert_eq!(b.trials.len(), 8);
    for i in 0..4 {
        assert_eq!(a.trials[i].steps, b.trials[i].steps, "trial {i} steps");
        assert_eq!(
            a.trials[i].estimate.to_bits(),
            b.trials[i].estimate.to_bits(),
            "trial {i} estimate"
        );
        assert_eq!(
            a.trials[i].potential.to_bits(),
            b.trials[i].potential.to_bits(),
            "trial {i} potential"
        );
    }
}

/// A zipped seed axis breaks the pairing — the opt-out is real.
#[test]
fn zipped_seeds_opt_out_of_crn() {
    let sweep = SweepSpec {
        base: base_spec(10, 4, 99, false),
        axes: vec![SweepAxis::Replicas(vec![4, 4]), SweepAxis::Seed(vec![1, 2])],
    };
    assert!(!sweep.is_crn());
    let report = run_sweep(&sweep).unwrap();
    assert!(report.contrasts().is_empty(), "no pairing without CRN");
    let (a, b) = (&report.cells[0].report, &report.cells[1].report);
    assert_ne!(
        a.trials.iter().map(|t| t.steps).collect::<Vec<_>>(),
        b.trials.iter().map(|t| t.steps).collect::<Vec<_>>(),
        "different masters must give different trials"
    );
}

/// The variance regression the tentpole is for: on an ε sweep, the
/// paired CRN contrast of mean steps has a strictly tighter 95% CI
/// than Welch's independent-samples analysis of the same data, and
/// than a genuinely independently-seeded sweep of equal replicas.
#[test]
fn paired_crn_ci_strictly_tighter_than_independent() {
    let replicas = 16;
    let eps = vec![1e-6, 1e-9];
    let crn = SweepSpec {
        base: base_spec(16, replicas, 2024, false),
        axes: vec![SweepAxis::Eps(eps.clone())],
    };
    let report = run_sweep(&crn).unwrap();
    let contrasts = report.contrasts();
    assert_eq!(contrasts.len(), 1);
    let paired = contrasts[0].steps.as_ref().expect("equal replica counts");

    let steps = |cell: usize| -> Vec<f64> {
        report.cells[cell]
            .report
            .trials
            .iter()
            .map(|t| t.steps as f64)
            .collect()
    };
    // Welch on the SAME CRN data ignores the pairing.
    let welch_same = welch_t_ci(&steps(1), &steps(0));
    assert!(
        paired.ci_width() < welch_same.ci_width(),
        "paired {:.2} vs welch {:.2}",
        paired.ci_width(),
        welch_same.ci_width()
    );

    // And an independently-seeded run of the same grid (zipped seed
    // axis) analysed with Welch — the pre-sweep workflow.
    let indep = SweepSpec {
        base: base_spec(16, replicas, 2024, false),
        axes: vec![SweepAxis::Eps(eps), SweepAxis::Seed(vec![1111, 2222])],
    };
    let indep_report = run_sweep(&indep).unwrap();
    let indep_steps = |cell: usize| -> Vec<f64> {
        indep_report.cells[cell]
            .report
            .trials
            .iter()
            .map(|t| t.steps as f64)
            .collect()
    };
    let welch_indep = welch_t_ci(&indep_steps(1), &indep_steps(0));
    assert!(
        paired.ci_width() < welch_indep.ci_width(),
        "paired {:.2} vs independent {:.2}",
        paired.ci_width(),
        welch_indep.ci_width()
    );
}

/// File-based spellings end to end: a custom initial vector and a
/// temporal-replay churn stream, loaded at `from_spec` time, run
/// through the normal engine dispatch.
#[test]
fn file_inputs_run_end_to_end() {
    let dir = std::env::temp_dir();
    let init_path = dir.join("od_sweep_prop_init.txt");
    let replay_path = dir.join("od_sweep_prop_replay.txt");
    // A ±1-like vector on 6 nodes, and a 2-snapshot trajectory cycling
    // between the 6-cycle and a chord-swapped variant.
    std::fs::write(&init_path, "1\n-1\n1\n-1\n1\n-1\n").unwrap();
    std::fs::write(
        &replay_path,
        "0 1\n1 2\n2 3\n3 4\n4 5\n5 0\n--\n0 2\n2 4\n4 0\n1 3\n3 5\n5 1\n--\n",
    )
    .unwrap();
    let text = format!(
        "model node alpha=0.5 k=1 lazy=false\n\
         graph cycle n=6\n\
         init file path={}\n\
         churn replay file={} epoch=6 seed=0\n\
         replicas 3\n\
         seed 11\n\
         stop converge eps=0.0001 rule=block potential=pi budget=600000\n",
        init_path.display(),
        replay_path.display(),
    );
    let sweep = SweepSpec::parse(&text).unwrap();
    assert!(sweep.axes.is_empty());
    let report = run_sweep(&sweep).unwrap();
    assert_eq!(report.cells.len(), 1);
    let cell = &report.cells[0].report;
    assert_eq!(cell.converged_count(), 3);
    assert!(cell.max_mutations() > 0, "replay churn must mutate edges");

    // A wrong-length init file is a from_spec error, not a mid-run
    // panic.
    let bad = text.replace("graph cycle n=6", "graph cycle n=8");
    let sweep = SweepSpec::parse(&bad).unwrap();
    match run_sweep(&sweep) {
        Err(SimError::Invalid(msg)) => assert!(msg.contains("6 values"), "{msg}"),
        other => panic!("expected invalid-init error, got {other:?}"),
    }
}
