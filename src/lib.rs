//! # opinion-dynamics
//!
//! A faithful, production-quality reproduction of
//! *Distributed Averaging in Opinion Dynamics* (Berenbrink, Cooper, Gava,
//! Mallmann-Trenn, Radzik, Kohan Marzagão, Rivera — PODC 2023).
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`graph`] — CSR graphs, generators, dynamic graphs (double-buffered
//!   CSR + churn models for evolving topologies), traversal, metrics.
//! * [`linalg`] — vectors, sparse/dense matrices, eigensolvers, Markov tools.
//! * [`stats`] — Welford accumulators, confidence intervals, regression,
//!   seeds, table output.
//! * [`core`] — the paper's processes: `NodeModel` (Def. 2.1), `EdgeModel`
//!   (Def. 2.3), the voter model, potential functions and the convergence
//!   engine.
//! * [`sim`] — the unified Scenario API: a declarative `ScenarioSpec`
//!   (with a parse/format text form, see `examples/scenarios/`) and a
//!   `Simulation` dispatcher that routes every scenario to the optimal
//!   engine automatically, plus the parallel Monte-Carlo runner.
//! * [`dual`] — the Diffusion Process, the Random Walk Process, the two-walk
//!   `Q`-chain with its closed-form stationary distribution (Lemma 5.7) and
//!   the exact variance predictor (Prop. 5.8).
//! * [`baselines`] — pairwise gossip, push-sum, DeGroot, Friedkin–Johnsen,
//!   Hegselmann–Krause, synchronous diffusion load balancing.
//! * [`runtime`] — a message-passing discrete-event simulator running the
//!   same dynamics as an explicit pull-based protocol.
//!
//! # Building & testing
//!
//! Everything runs from the workspace root:
//!
//! ```text
//! cargo build --release                        # all crates
//! cargo test -q                                # unit + integration + property tests
//! cargo bench -p od-bench                      # Criterion suite (10 targets)
//! cargo run --release -p od-experiments --bin run_experiments -- --list
//! ```
//!
//! The root `tests/` directory holds the theory cross-checks: `conformance`
//! couples the state-vector model, the message-passing runtime and the
//! reversed diffusion dual through shared [`core::StepRecord`] streams;
//! `stationary` and `variance_bounds` validate Lemma 5.7 and Prop. 5.8;
//! `determinism` pins byte-identical seeded replays.
//!
//! External dependencies (`rand`, `criterion`, `proptest`) are vendored
//! under `vendor/` as offline API-subset stand-ins — see `README.md`.
//!
//! # Quickstart
//!
//! ```
//! use opinion_dynamics::graph::generators;
//! use opinion_dynamics::core::{NodeModel, NodeModelParams, OpinionProcess};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let g = generators::cycle(64)?;
//! let xi0: Vec<f64> = (0..64).map(|i| i as f64).collect();
//! let params = NodeModelParams::new(0.5, 1)?;
//! let mut process = NodeModel::new(&g, xi0, params)?;
//! let mut rng = StdRng::seed_from_u64(7);
//! for _ in 0..200_000 {
//!     process.step(&mut rng);
//! }
//! let f = process.state().average();
//! assert!((f - 31.5).abs() < 10.0); // F concentrates near the initial average
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]

pub use od_baselines as baselines;
pub use od_core as core;
pub use od_dual as dual;
pub use od_graph as graph;
pub use od_linalg as linalg;
pub use od_runtime as runtime;
pub use od_sim as sim;
pub use od_stats as stats;
